//! Report rendering: thesis-style text tables and the `dprof-report/v1` JSON document,
//! both driven by the same [`MergedReport`].

use crate::args::{Format, Options, View};
use crate::json::Json;
use crate::merge::MergedReport;
use std::fmt::Write as _;

/// JSON schema identifier emitted in every report.
pub const SCHEMA: &str = dprof::core::schema::REPORT_V1;

/// Renders the report in the requested format.
pub fn render(report: &MergedReport, options: &Options) -> String {
    match options.format {
        Format::Text => render_text(report, options),
        Format::Json => render_json(report, options).to_pretty_string(),
    }
}

use dprof::core::report::format_bytes;

/// Renders the thesis-style text report.
pub fn render_text(report: &MergedReport, options: &Options) -> String {
    let mut out = String::new();
    let workload = options.run.workload.name();
    writeln!(
        out,
        "dprof report — workload {workload}, {} thread(s) x {} core(s)",
        options.run.threads, options.run.cores
    )
    .unwrap();
    writeln!(
        out,
        "{} requests profiled, {:.0} req/s simulated, {:.2}% profiling overhead",
        report.total_requests,
        report.aggregate_rps,
        100.0 * report.profiling_fraction
    )
    .unwrap();

    for view in &options.views {
        match view {
            View::DataProfile => text_data_profile(&mut out, report, options.top),
            View::MissClassification => text_miss_classification(&mut out, report, options.top),
            View::WorkingSet => text_working_set(&mut out, report, options.top),
            View::Utilization => text_utilization(&mut out, report, options.top),
            View::DataFlow => text_data_flow(&mut out, report, options.top),
        }
    }
    out
}

fn text_data_profile(out: &mut String, report: &MergedReport, top: usize) {
    writeln!(out, "\n=== Data profile ===").unwrap();
    writeln!(
        out,
        "{:<16} {:>12} {:>14} {:>17} {:>14} {:>8} {:>8} {:>7}",
        "Type name",
        "WS size",
        "% L1 misses",
        "95% CI",
        "% miss cycles",
        "Bounce",
        "Threads",
        "Rank"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(104)).unwrap();
    for row in report.data_profile.iter().take(top) {
        writeln!(
            out,
            "{:<16} {:>12} {:>13.2}% {:>17} {:>13.2}% {:>8} {:>8} {:>7}",
            row.name,
            format_bytes(row.working_set_bytes),
            row.pct_of_l1_misses,
            format!("[{:.2}, {:.2}]", row.ci95_low, row.ci95_high),
            row.pct_of_miss_cycles,
            if row.bounce { "yes" } else { "no" },
            row.threads_seen,
            if row.rank_stable { "firm" } else { "~" }
        )
        .unwrap();
    }
}

fn text_miss_classification(out: &mut String, report: &MergedReport, top: usize) {
    writeln!(out, "\n=== Miss classification ===").unwrap();
    writeln!(
        out,
        "{:<16} {:>10} {:>14} {:>10} {:>10}  Dominant",
        "Type name", "Misses", "Invalidation", "Conflict", "Capacity"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(78)).unwrap();
    for row in report.miss_classification.iter().take(top) {
        writeln!(
            out,
            "{:<16} {:>10} {:>13.1}% {:>9.1}% {:>9.1}%  {}",
            row.name,
            row.miss_samples,
            100.0 * row.invalidation,
            100.0 * row.conflict,
            100.0 * row.capacity,
            row.dominant()
        )
        .unwrap();
    }
}

fn text_working_set(out: &mut String, report: &MergedReport, top: usize) {
    let ws = &report.working_set;
    writeln!(out, "\n=== Working set ===").unwrap();
    writeln!(
        out,
        "{:<16} {:>14} {:>14} {:>14}",
        "Type name", "Avg bytes", "Avg objects", "Peak bytes"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(62)).unwrap();
    for row in ws.rows.iter().take(top) {
        writeln!(
            out,
            "{:<16} {:>14} {:>14.1} {:>14}",
            row.name,
            format_bytes(row.avg_live_bytes),
            row.avg_live_objects,
            format_bytes(row.peak_live_bytes as f64)
        )
        .unwrap();
    }
    writeln!(out, "{}", "-".repeat(62)).unwrap();
    writeln!(
        out,
        "avg working set {} vs cache capacity {}; {} of {} thread(s) over capacity; \
         up to {} over-subscribed sets",
        format_bytes(ws.total_avg_bytes),
        format_bytes(ws.cache_capacity as f64),
        ws.threads_exceeding_capacity,
        report.threads.len(),
        ws.max_conflict_sets
    )
    .unwrap();
}

fn text_utilization(out: &mut String, report: &MergedReport, top: usize) {
    let util = &report.utilization;
    writeln!(out, "\n=== Line utilization ===").unwrap();
    writeln!(
        out,
        "{:<16} {:>8} {:>15} {:>12} {:>12} {:>9} {:>7}  Origin",
        "Type name", "Util%", "95% CI", "Wasted", "Wasted/s", "Re-fetch", "Rank"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(100)).unwrap();
    for row in util.rows.iter().take(top) {
        let origin = row
            .origins
            .first()
            .map(|o| o.origin.as_str())
            .unwrap_or("-");
        writeln!(
            out,
            "{:<16} {:>7.1}% [{:>5.1}, {:>5.1}] {:>12} {:>10}/s {:>8.1}% {:>7}  {}",
            row.name,
            row.utilization_pct,
            row.ci95_low,
            row.ci95_high,
            format_bytes(row.wasted_bytes as f64),
            format_bytes(row.wasted_bytes_per_sec),
            100.0 * row.refetch_ratio,
            if row.rank_stable { "firm" } else { "~" },
            origin
        )
        .unwrap();
    }
    writeln!(out, "{}", "-".repeat(100)).unwrap();
    writeln!(
        out,
        "{} line fills tallied, {} re-fetches of evicted lines",
        util.total_fetches, util.total_refetches
    )
    .unwrap();
}

fn text_data_flow(out: &mut String, report: &MergedReport, top: usize) {
    writeln!(out, "\n=== Data flow (core crossings) ===").unwrap();
    if report.data_flows.is_empty() {
        writeln!(out, "no object access histories collected").unwrap();
        return;
    }
    for flow in &report.data_flows {
        if flow.core_crossings == 0 {
            writeln!(out, "{}: no core transitions observed", flow.type_name).unwrap();
            continue;
        }
        writeln!(
            out,
            "{}: {} core-crossing traversal(s)",
            flow.type_name, flow.core_crossings
        )
        .unwrap();
        for edge in flow.edges.iter().filter(|e| e.cpu_change).take(top.min(3)) {
            writeln!(
                out,
                "  {} -> {} crosses cores (x{})",
                edge.from, edge.to, edge.count
            )
            .unwrap();
        }
    }
}

/// Builds the `dprof-report/v1` JSON document.
pub fn render_json(report: &MergedReport, options: &Options) -> Json {
    let mut root = vec![
        ("schema".to_string(), Json::str(SCHEMA)),
        ("run".to_string(), run_section(report, options)),
        ("throughput".to_string(), throughput_section(report)),
    ];
    for view in &options.views {
        let section = match view {
            View::DataProfile => data_profile_section(report, options.top),
            View::MissClassification => miss_classification_section(report, options.top),
            View::WorkingSet => working_set_section(report, options.top),
            View::Utilization => utilization_section(report, options.top),
            View::DataFlow => data_flow_section(report, options.top),
        };
        root.push((view.key().replace('-', "_"), section));
    }
    Json::Obj(root)
}

fn run_section(_report: &MergedReport, options: &Options) -> Json {
    let run = &options.run;
    Json::obj(vec![
        ("workload", Json::str(run.workload.name())),
        ("threads", Json::num(run.threads as u32)),
        ("cores_per_machine", Json::num(run.cores as u32)),
        ("warmup_rounds", Json::num(run.warmup_rounds as u32)),
        ("sample_rounds", Json::num(run.sample_rounds as u32)),
        ("sampling", Json::str(run.sampling.to_string())),
        ("history_types", Json::num(run.history_types as u32)),
        ("history_sets", Json::num(run.history_sets as u32)),
        ("base_seed", Json::num(run.base_seed as f64)),
        (
            "views",
            Json::Arr(options.views.iter().map(|v| Json::str(v.key())).collect()),
        ),
    ])
}

fn throughput_section(report: &MergedReport) -> Json {
    Json::obj(vec![
        ("total_requests", Json::num(report.total_requests as f64)),
        ("aggregate_rps", Json::num(report.aggregate_rps)),
        ("profiling_fraction", Json::num(report.profiling_fraction)),
        (
            "per_thread",
            Json::Arr(
                report
                    .threads
                    .iter()
                    .map(|t| {
                        Json::obj(vec![
                            ("thread", Json::num(t.thread as u32)),
                            ("seed", Json::num(t.seed as f64)),
                            ("requests", Json::num(t.requests as f64)),
                            ("rps", Json::num(t.rps)),
                            ("profiling_fraction", Json::num(t.profiling_fraction)),
                            ("samples", Json::num(t.samples as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn data_profile_section(report: &MergedReport, top: usize) -> Json {
    Json::obj(vec![(
        "rows",
        Json::Arr(
            report
                .data_profile
                .iter()
                .take(top)
                .map(|row| {
                    Json::obj(vec![
                        ("type", Json::str(&row.name)),
                        ("description", Json::str(&row.description)),
                        ("working_set_bytes", Json::num(row.working_set_bytes)),
                        ("pct_of_l1_misses", Json::num(row.pct_of_l1_misses)),
                        ("ci95_low", Json::num(row.ci95_low)),
                        ("ci95_high", Json::num(row.ci95_high)),
                        ("rank_stable", Json::Bool(row.rank_stable)),
                        ("pct_of_miss_cycles", Json::num(row.pct_of_miss_cycles)),
                        ("bounce", Json::Bool(row.bounce)),
                        ("samples", Json::num(row.samples as f64)),
                        ("l1_miss_samples", Json::num(row.l1_miss_samples as f64)),
                        ("threads_seen", Json::num(row.threads_seen as u32)),
                    ])
                })
                .collect(),
        ),
    )])
}

fn miss_classification_section(report: &MergedReport, top: usize) -> Json {
    Json::obj(vec![(
        "rows",
        Json::Arr(
            report
                .miss_classification
                .iter()
                .take(top)
                .map(|row| {
                    Json::obj(vec![
                        ("type", Json::str(&row.name)),
                        ("miss_samples", Json::num(row.miss_samples as f64)),
                        (
                            "fractions",
                            Json::obj(vec![
                                ("invalidation", Json::num(row.invalidation)),
                                ("conflict", Json::num(row.conflict)),
                                ("capacity", Json::num(row.capacity)),
                            ]),
                        ),
                        ("dominant", Json::str(row.dominant())),
                    ])
                })
                .collect(),
        ),
    )])
}

fn working_set_section(report: &MergedReport, top: usize) -> Json {
    let ws = &report.working_set;
    Json::obj(vec![
        ("cache_capacity_bytes", Json::num(ws.cache_capacity as f64)),
        ("cache_ways", Json::num(ws.cache_ways as u32)),
        ("total_avg_bytes", Json::num(ws.total_avg_bytes)),
        (
            "threads_exceeding_capacity",
            Json::num(ws.threads_exceeding_capacity as u32),
        ),
        ("max_conflict_sets", Json::num(ws.max_conflict_sets as u32)),
        (
            "rows",
            Json::Arr(
                ws.rows
                    .iter()
                    .take(top)
                    .map(|row| {
                        Json::obj(vec![
                            ("type", Json::str(&row.name)),
                            ("description", Json::str(&row.description)),
                            ("avg_live_bytes", Json::num(row.avg_live_bytes)),
                            ("avg_live_objects", Json::num(row.avg_live_objects)),
                            ("peak_live_bytes", Json::num(row.peak_live_bytes as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn utilization_section(report: &MergedReport, top: usize) -> Json {
    let util = &report.utilization;
    Json::obj(vec![
        ("total_fetches", Json::num(util.total_fetches as f64)),
        ("total_refetches", Json::num(util.total_refetches as f64)),
        (
            "resolved_slots_fetched",
            Json::num(util.resolved_slots_fetched as f64),
        ),
        (
            "resolved_slots_touched",
            Json::num(util.resolved_slots_touched as f64),
        ),
        (
            "rows",
            Json::Arr(
                util.rows
                    .iter()
                    .take(top)
                    .map(|row| {
                        Json::obj(vec![
                            ("type", Json::str(&row.name)),
                            ("description", Json::str(&row.description)),
                            ("slots_fetched", Json::num(row.slots_fetched as f64)),
                            ("slots_touched", Json::num(row.slots_touched as f64)),
                            ("refetch_slots", Json::num(row.refetch_slots as f64)),
                            ("utilization_pct", Json::num(row.utilization_pct)),
                            ("ci95_low", Json::num(row.ci95_low)),
                            ("ci95_high", Json::num(row.ci95_high)),
                            ("rank_stable", Json::Bool(row.rank_stable)),
                            ("wasted_bytes", Json::num(row.wasted_bytes as f64)),
                            ("wasted_bytes_per_sec", Json::num(row.wasted_bytes_per_sec)),
                            ("refetch_ratio", Json::num(row.refetch_ratio)),
                            (
                                "origins",
                                Json::Arr(
                                    row.origins
                                        .iter()
                                        .map(|o| {
                                            Json::obj(vec![
                                                ("origin", Json::str(&o.origin)),
                                                (
                                                    "slots_fetched",
                                                    Json::num(o.slots_fetched as f64),
                                                ),
                                                (
                                                    "slots_touched",
                                                    Json::num(o.slots_touched as f64),
                                                ),
                                                ("wasted_bytes", Json::num(o.wasted_bytes as f64)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn data_flow_section(report: &MergedReport, top: usize) -> Json {
    Json::obj(vec![(
        "types",
        Json::Arr(
            report
                .data_flows
                .iter()
                .map(|flow| {
                    Json::obj(vec![
                        ("type", Json::str(&flow.type_name)),
                        ("core_crossings", Json::num(flow.core_crossings as f64)),
                        (
                            "nodes",
                            Json::Arr(
                                flow.nodes
                                    .iter()
                                    .take(top)
                                    .map(|n| {
                                        Json::obj(vec![
                                            ("function", Json::str(&n.function)),
                                            ("samples", Json::num(n.samples as f64)),
                                            ("weight", Json::num(n.weight as f64)),
                                            ("avg_latency", Json::num(n.avg_latency)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                        (
                            "edges",
                            Json::Arr(
                                flow.edges
                                    .iter()
                                    .take(top)
                                    .map(|e| {
                                        Json::obj(vec![
                                            ("from", Json::str(&e.from)),
                                            ("to", Json::str(&e.to)),
                                            ("count", Json::num(e.count as f64)),
                                            ("cpu_change", Json::Bool(e.cpu_change)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        ),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::{Format, Options, View};
    use crate::driver::{run_parallel, RunOptions, WorkloadKind};
    use crate::merge::merge;

    fn small_options() -> Options {
        Options {
            run: RunOptions {
                workload: WorkloadKind::Memcached,
                threads: 2,
                cores: 2,
                warmup_rounds: 5,
                sample_rounds: 40,
                history_types: 2,
                history_sets: 2,
                ..Default::default()
            },
            views: View::ALL.to_vec(),
            format: Format::Json,
            top: 8,
            output: None,
            trace_out: None,
        }
    }

    #[test]
    fn json_report_has_all_sections_and_parses() {
        let options = small_options();
        let runs = run_parallel(&options.run).unwrap();
        let report = merge(&runs);
        let text = render(&report, &options);
        let doc = Json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        for section in [
            "run",
            "throughput",
            "data_profile",
            "miss_classification",
            "working_set",
            "utilization",
            "data_flow",
        ] {
            assert!(doc.get(section).is_some(), "missing section {section}");
        }
        let rows = doc
            .get("data_profile")
            .unwrap()
            .get("rows")
            .unwrap()
            .as_array()
            .unwrap();
        assert!(!rows.is_empty());
        assert!(rows
            .iter()
            .any(|r| r.get("type").and_then(Json::as_str) == Some("skbuff")));
    }

    #[test]
    fn view_filtering_limits_sections() {
        let mut options = small_options();
        options.views = vec![View::WorkingSet];
        let runs = run_parallel(&options.run).unwrap();
        let report = merge(&runs);
        let doc = Json::parse(&render(&report, &options)).unwrap();
        assert!(doc.get("working_set").is_some());
        assert!(doc.get("data_profile").is_none());
        assert!(doc.get("data_flow").is_none());
    }

    #[test]
    fn text_report_renders_requested_views() {
        let mut options = small_options();
        options.format = Format::Text;
        options.views = vec![View::DataProfile, View::DataFlow];
        let runs = run_parallel(&options.run).unwrap();
        let report = merge(&runs);
        let text = render(&report, &options);
        assert!(text.contains("=== Data profile ==="));
        assert!(text.contains("=== Data flow"));
        assert!(!text.contains("=== Working set ==="));
        assert!(text.contains("dprof report — workload memcached"));
    }
}
