//! # dprof-cli
//!
//! The unified command-line driver for the DProf reproduction.  One binary — `dprof` —
//! selects a workload (memcached / apache / custom false-sharing), a machine
//! configuration, and any subset of the four data-centric views, runs the profile
//! across multiple worker threads (one independent simulated machine per thread), and
//! emits either thesis-style text tables or a `dprof-report/v1` JSON document.
//!
//! ```text
//! cargo run -p dprof-cli -- --workload memcached --threads 4 --format json
//! ```
//!
//! The crate is a thin shell over the workspace: [`driver`] builds machines and runs
//! [`dprof::core::Dprof`] sessions, [`merge`] folds per-thread profiles into one
//! report keyed by type / function names, [`render`] emits text or JSON (via the
//! dependency-free [`json`] module), and [`args`] parses the flag surface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod driver;
pub mod json;
pub mod merge;
pub mod render;

use args::{Parsed, View};

/// Version string reported by `dprof --version`.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Runs the CLI against an already-split argument list (no program name) and returns
/// the process exit code.  Report text goes to stdout (or `--output`), diagnostics to
/// stderr.
pub fn run(args: &[String]) -> i32 {
    let options = match args::parse(args) {
        Ok(Parsed::Help) => {
            print!("{}", args::USAGE);
            return 0;
        }
        Ok(Parsed::Version) => {
            println!("dprof {VERSION}");
            return 0;
        }
        Ok(Parsed::Run(options)) => options,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("usage: dprof [OPTIONS] (try --help)");
            return 2;
        }
    };

    eprintln!(
        "profiling {} on {} thread(s) x {} core(s), {} sampling rounds...",
        options.run.workload.name(),
        options.run.threads,
        options.run.cores,
        options.run.sample_rounds
    );

    let runs = match driver::run_parallel(&options.run) {
        Ok(runs) => runs,
        Err(message) => {
            eprintln!("error: {message}");
            return 1;
        }
    };
    let report = merge::merge(&runs);

    let missing_flows = report.data_flows.is_empty()
        && options.views.contains(&View::DataFlow)
        && options.run.history_types > 0;
    if missing_flows {
        eprintln!(
            "note: no object access histories were collected; try more --rounds or a \
             larger --history-sets"
        );
    }

    let rendered = render::render(&report, &options);
    match &options.output {
        None => {
            print!("{rendered}");
            0
        }
        Some(path) => match std::fs::write(path, rendered.as_bytes()) {
            Ok(()) => {
                eprintln!("report written to {path}");
                0
            }
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                1
            }
        },
    }
}
