//! # dprof-cli
//!
//! The unified command-line driver for the DProf reproduction.  One binary — `dprof` —
//! selects a workload (memcached / apache / custom false-sharing), a machine
//! configuration, and any subset of the four data-centric views, runs the profile
//! across multiple worker threads (one independent simulated machine per thread), and
//! emits either thesis-style text tables or a `dprof-report/v1` JSON document.
//!
//! ```text
//! cargo run -p dprof-cli -- --workload memcached --threads 4 --format json
//! ```
//!
//! The crate is a thin shell over the workspace: [`driver`] builds machines and runs
//! [`dprof::core::Dprof`] sessions, [`merge`] folds per-thread profiles into one
//! report keyed by type / function names, [`render`] emits text or JSON (via the
//! dependency-free [`json`] module), and [`args`] parses the flag surface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accuracy;
pub mod args;
pub mod diff;
pub mod driver;
pub mod json;
pub mod merge;
pub mod registry;
pub mod render;
pub mod serve_cmd;
pub mod whatif;

use args::{Parsed, View};

/// Version string reported by `dprof --version`.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

/// Runs the CLI against an already-split argument list (no program name) and returns
/// the process exit code.  Report text goes to stdout (or `--output`), diagnostics to
/// stderr.
pub fn run(args: &[String]) -> i32 {
    match args::parse(args) {
        Ok(Parsed::Help) => {
            print!("{}", args::usage());
            0
        }
        Ok(Parsed::Version) => {
            println!("dprof {VERSION}");
            0
        }
        Ok(parsed) => registry::dispatch(parsed),
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("usage: dprof [SUBCOMMAND] [OPTIONS] (try --help)");
            2
        }
    }
}

/// `dprof run` / `dprof record`: profile a workload live, optionally recording a
/// replayable session trace, and render the merged report.
pub(crate) fn run_profile(options: args::Options) -> i32 {
    eprintln!(
        "profiling {} on {} thread(s) x {} core(s), {} sampling rounds...",
        options.run.workload.name(),
        options.run.threads,
        options.run.cores,
        options.run.sample_rounds
    );

    let mut runs = match driver::run_parallel(&options.run) {
        Ok(runs) => runs,
        Err(message) => {
            eprintln!("error: {message}");
            return 1;
        }
    };

    // `dprof record`: persist the session trace before rendering the report.
    if let Some(trace_path) = &options.trace_out {
        match build_trace_file(&options, &mut runs) {
            Some(file) => {
                if let Err(message) = file.write(trace_path) {
                    eprintln!("error: {message}");
                    return 1;
                }
                let events: usize = file.streams.iter().map(|s| s.events.len()).sum();
                eprintln!(
                    "session trace written to {trace_path} ({} stream(s), {events} events)",
                    file.streams.len()
                );
            }
            None => {
                eprintln!("error: recording produced no session streams");
                return 1;
            }
        }
    }

    let report = merge::merge(&runs);

    let missing_flows = report.data_flows.is_empty()
        && options.views.contains(&View::DataFlow)
        && options.run.history_types > 0;
    if missing_flows {
        eprintln!(
            "note: no object access histories were collected; try more --rounds or a \
             larger --history-sets"
        );
    }

    let rendered = render::render(&report, &options);
    emit(&rendered, &options.output)
}

pub(crate) fn emit(rendered: &str, output: &Option<String>) -> i32 {
    match output {
        None => {
            print!("{rendered}");
            0
        }
        Some(path) => match std::fs::write(path, rendered.as_bytes()) {
            Ok(()) => {
                eprintln!("report written to {path}");
                0
            }
            Err(e) => {
                eprintln!("error: cannot write {path}: {e}");
                1
            }
        },
    }
}

/// Assembles the `.dtrace` file from a recorded multi-thread run, taking the streams
/// by move — they can hold millions of events per thread, and nothing after the trace
/// write needs them.
fn build_trace_file(
    options: &args::Options,
    runs: &mut [driver::ThreadRun],
) -> Option<dprof::trace::TraceFile> {
    let machine = runs.first()?.recorded.as_ref()?.machine;
    let streams: Vec<dprof::trace::ThreadStream> = runs
        .iter_mut()
        .filter_map(|r| r.recorded.take().map(|rec| rec.stream))
        .collect();
    if streams.len() != runs.len() {
        return None;
    }
    Some(dprof::trace::TraceFile {
        kind: dprof::trace::TraceKind::FullSession,
        machine,
        params: dprof::trace::SessionParams {
            workload: options.run.workload.name().to_string(),
            threads: options.run.threads,
            cores: options.run.cores,
            warmup_rounds: options.run.warmup_rounds,
            sample_rounds: options.run.sample_rounds,
            sampling: options.run.sampling,
            history_types: options.run.history_types,
            history_sets: options.run.history_sets,
            base_seed: options.run.base_seed,
        },
        streams,
    })
}

/// `dprof replay`: re-profiles a recorded session and renders the report.  The run
/// parameters come from the trace header, so the emitted report is byte-identical to
/// the recorded run's (given the same report options).  Events stream from disk in
/// bounded chunks rather than being slurped; `--sharded` re-simulates the caches on
/// the parallel epoch-batched engine (same report, byte for byte).
pub(crate) fn run_replay(options: &args::ReplayOptions) -> i32 {
    let reader = match dprof::trace::TraceReader::open(&options.input) {
        Ok(reader) => reader,
        Err(message) => {
            eprintln!("error: {message}");
            return 1;
        }
    };
    eprintln!(
        "replaying {} ({} workload, {} stream(s), {} events{})...",
        options.input,
        reader.params.workload,
        reader.stream_count(),
        reader
            .headers()
            .iter()
            .map(|h| h.event_count)
            .sum::<usize>(),
        if options.sharded {
            ", sharded engine"
        } else {
            ""
        }
    );

    let replayed = if options.sharded {
        dprof::trace::replay_all_sharded(&reader, options.epoch_len, options.workers)
    } else {
        dprof::trace::replay_all_streaming(&reader)
    };
    let replays = match replayed {
        Ok(replays) => replays,
        Err(message) => {
            eprintln!("error: {message}");
            return 1;
        }
    };
    for r in &replays {
        if r.trailing_events > 0 {
            eprintln!(
                "warning: stream {} diverged from the recording ({} trailing event(s)); \
                 the trace was probably produced by a different build",
                r.thread, r.trailing_events
            );
        }
    }

    let runs: Vec<driver::ThreadRun> = replays
        .into_iter()
        .map(|r| driver::ThreadRun {
            thread: r.thread,
            seed: r.seed,
            profile: r.profile,
            type_names: r.type_names,
            requests: r.requests,
            elapsed_seconds: r.elapsed_seconds,
            total_cycles: r.total_cycles,
            profiling_fraction: r.profiling_fraction,
            recorded: None,
        })
        .collect();
    let report = merge::merge(&runs);

    // Rebuild the options the recorded run rendered with, so the `run` section of the
    // report (and the text header) match the live output byte-for-byte.
    let workload = match driver::parse_workload_spec(&reader.params.workload) {
        Ok(kind) => kind,
        Err(_) => {
            eprintln!(
                "warning: trace header names unknown workload '{}'; the report's run \
                 section will say 'memcached'",
                reader.params.workload
            );
            driver::WorkloadKind::Memcached
        }
    };
    let render_options = args::Options {
        run: driver::RunOptions {
            workload,
            threads: reader.stream_count(),
            cores: reader.params.cores,
            warmup_rounds: reader.params.warmup_rounds,
            sample_rounds: reader.params.sample_rounds,
            sampling: reader.params.sampling,
            history_types: reader.params.history_types,
            history_sets: reader.params.history_sets,
            base_seed: reader.params.base_seed,
            ..Default::default()
        },
        views: options.views.clone(),
        format: options.format,
        top: options.top,
        output: options.output.clone(),
        trace_out: None,
    };
    let rendered = render::render(&report, &render_options);
    emit(&rendered, &options.output)
}
