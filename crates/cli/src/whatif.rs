//! The `dprof whatif` subcommand: causal what-if profiling.
//!
//! A data-profile row says *where* the misses are; it does not say how much fixing
//! them would actually buy.  `dprof whatif` answers that causally: it replays a
//! recorded `.dtrace` session against hypothetical memory layouts (the
//! [`FixSpec`] transforms in `dprof-trace`) and reports each candidate's predicted
//! end-to-end throughput gain — the makespan delta between the identity baseline and
//! the counterfactual replay — ranked, with Wilson-gated block-vote confidence from
//! `dprof-core`.
//!
//! `--auto` enumerates candidates from the trace itself: it re-profiles the trace
//! (the ordinary replay pipeline), takes the top data-profile rows, and picks a fix
//! family per type from the dominant miss class plus granule-sharing statistics —
//! capacity/conflict misses suggest `shrink`, invalidation misses split into `pad`
//! (single-owner granules: false sharing), `pin` (serial migration) and `localize`
//! (concurrent sharing).

use crate::args::{Format, WhatifOptions};
use crate::json::Json;
use crate::{driver, merge};
use dprof::core::{blocks_from_rounds, estimate_gain, rank_candidates, BlockDelta, GainEstimate};
use dprof::trace::{
    analyze_sharing, measure_all, replay_all, validate_spec, FixSpec, TraceFile, WhatifMeasure,
};
use std::fmt::Write as _;

/// JSON schema identifier of the what-if document.
pub const WHATIF_SCHEMA: &str = dprof::core::schema::WHATIF_V1;

/// Minimum merged L1-miss samples a data-profile row needs before `--auto` spends a
/// measurement replay on it.
const AUTO_MISS_FLOOR: u64 = 8;
/// How many top data-profile rows `--auto` diagnoses.
const AUTO_TOP_TYPES: usize = 3;
/// Below this foreign-access fraction, invalidation misses come from granules that
/// each have a single owning core — false sharing, `pad` territory.
const PAD_FOREIGN_MAX: f64 = 0.25;
/// Below this mean per-round core concurrency, sharing is serial hand-off between
/// cores (`pin` territory); above, genuinely concurrent (`localize` territory).
const PIN_CONCURRENCY_MAX: f64 = 1.4;
/// Minimum pooled granule slots a utilization row needs before `--auto` treats its
/// wasted bandwidth as evidence rather than noise.
const AUTO_UTIL_FETCH_FLOOR: u64 = 64;
/// Utilization at or above this fraction of the line is healthy; only rows below it
/// become layout-fix candidates.
const AUTO_UTIL_PCT_MAX: f64 = 50.0;

/// One measured candidate fix, in rank order.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The fix that was applied at replay time.
    pub spec: FixSpec,
    /// Where the candidate came from: `--fix`, or `--auto`'s diagnosis one-liner.
    pub source: String,
    /// Predicted effect with block-vote confidence.
    pub estimate: GainEstimate,
    /// True when the candidate's rank is statistically firm (its gain interval does
    /// not overlap either ranked neighbour's).
    pub rank_stable: bool,
}

/// The full outcome of a what-if analysis: the baseline measurement plus every
/// candidate, ranked by predicted gain (descending).
#[derive(Debug, Clone)]
pub struct WhatifAnalysis {
    /// Recorded streams measured (one simulated machine each).
    pub streams: usize,
    /// Measured post-warmup rounds per stream.
    pub rounds: usize,
    /// Identity-baseline makespan cycles, summed over streams.
    pub baseline_cycles: u64,
    /// Identity-baseline simulated seconds (max over streams; they run in parallel).
    pub baseline_seconds: f64,
    /// Candidates in rank order.
    pub candidates: Vec<Candidate>,
}

/// Runs the what-if engine over a decoded trace: validates and/or enumerates the
/// candidate fixes, measures the identity baseline and every candidate, and ranks
/// the results.  This is the same entry point the oracle harness drives in-process.
pub fn analyze_trace(
    file: &TraceFile,
    explicit: &[FixSpec],
    auto: bool,
) -> Result<WhatifAnalysis, String> {
    for spec in explicit {
        validate_spec(file, spec)?;
    }
    let mut specs: Vec<(FixSpec, String)> = explicit
        .iter()
        .map(|s| (s.clone(), "--fix".to_string()))
        .collect();
    if auto {
        for (spec, why) in auto_candidates(file)? {
            if !specs.iter().any(|(s, _)| s == &spec) {
                specs.push((spec, why));
            }
        }
    }
    if specs.is_empty() {
        return Err("no candidate fixes (pass --fix <spec> and/or --auto)".into());
    }

    let baseline = measure_all(file, &FixSpec::Identity)?;
    let baseline_cycles: u64 = baseline.iter().map(WhatifMeasure::window_cycles).sum();
    let baseline_seconds = baseline
        .iter()
        .map(WhatifMeasure::window_seconds)
        .fold(0.0_f64, f64::max);
    let rounds = baseline
        .iter()
        .map(|m| m.round_clocks.len())
        .max()
        .unwrap_or(0);

    let mut measured: Vec<(FixSpec, String, GainEstimate)> = Vec::new();
    for (spec, source) in specs {
        let fixed = measure_all(file, &spec)?;
        let mut blocks: Vec<BlockDelta> = Vec::new();
        for (b, f) in baseline.iter().zip(&fixed) {
            blocks.extend(blocks_from_rounds(
                &b.round_clocks,
                &f.round_clocks,
                b.warmup_clock,
                f.warmup_clock,
            ));
        }
        measured.push((spec, source, estimate_gain(&blocks)));
    }

    let labelled: Vec<(String, GainEstimate)> = measured
        .iter()
        .map(|(spec, _, est)| (spec.to_string(), est.clone()))
        .collect();
    let candidates = rank_candidates(&labelled)
        .into_iter()
        .map(|(i, rank_stable)| {
            let (spec, source, estimate) = measured[i].clone();
            Candidate {
                spec,
                source,
                estimate,
                rank_stable,
            }
        })
        .collect();

    Ok(WhatifAnalysis {
        streams: baseline.len(),
        rounds,
        baseline_cycles,
        baseline_seconds,
        candidates,
    })
}

/// Enumerates `--auto` candidates: re-profile the trace through the ordinary replay
/// pipeline, take the top data-profile rows, and diagnose a fix family per type.
fn auto_candidates(file: &TraceFile) -> Result<Vec<(FixSpec, String)>, String> {
    let runs: Vec<driver::ThreadRun> = replay_all(file)?
        .into_iter()
        .map(|r| driver::ThreadRun {
            thread: r.thread,
            seed: r.seed,
            profile: r.profile,
            type_names: r.type_names,
            requests: r.requests,
            elapsed_seconds: r.elapsed_seconds,
            total_cycles: r.total_cycles,
            profiling_fraction: r.profiling_fraction,
            recorded: None,
        })
        .collect();
    let report = merge::merge(&runs);
    let line = file.machine.hierarchy.l1.line_size as u64;

    let mut out: Vec<(FixSpec, String)> = Vec::new();
    for row in report
        .data_profile
        .iter()
        .filter(|r| r.l1_miss_samples >= AUTO_MISS_FLOOR)
        .take(AUTO_TOP_TYPES)
    {
        let dominant = report
            .miss_classification
            .iter()
            .find(|m| m.name == row.name)
            .map(merge::MergedMissRow::dominant)
            .unwrap_or("invalidation");
        out.push(diagnose(file, &row.name, dominant, line));
    }
    // The utilization view surfaces layout waste the miss-share rows can hide: a
    // type whose misses land in L2/L3 never reaches the data-profile top, yet every
    // fetch of its lines can still be mostly dead bytes.  Low-utilization rows with
    // enough pooled evidence become shrink candidates too.
    for row in report
        .utilization
        .rows
        .iter()
        .filter(|r| {
            r.slots_fetched >= AUTO_UTIL_FETCH_FLOOR && r.utilization_pct < AUTO_UTIL_PCT_MAX
        })
        .take(AUTO_TOP_TYPES)
    {
        let spec = FixSpec::Shrink {
            type_name: row.name.clone(),
            bytes: line,
        };
        if out.iter().any(|(s, _)| s == &spec) {
            continue;
        }
        out.push((
            spec,
            format!(
                "line utilization {:.0}% ({} wasted bytes/s): pack live fields into one \
                 {line}-byte line",
                row.utilization_pct, row.wasted_bytes_per_sec as u64
            ),
        ));
    }
    if out.is_empty() {
        return Err(
            "--auto found no candidates: the trace's profile has no data-profile rows \
             with enough miss samples (record with a smaller sampling interval or more \
             rounds)"
                .into(),
        );
    }
    Ok(out)
}

/// Picks the fix family for one hot type from its dominant miss class and its
/// granule-sharing statistics.
fn diagnose(file: &TraceFile, name: &str, dominant: &str, line: u64) -> (FixSpec, String) {
    if dominant != "invalidation" {
        return (
            FixSpec::Shrink {
                type_name: name.to_string(),
                bytes: line,
            },
            format!("{dominant}-dominated misses: compact each object to one {line}-byte line"),
        );
    }
    let sharing = analyze_sharing(file, name);
    if sharing.foreign_fraction < PAD_FOREIGN_MAX {
        (
            FixSpec::Pad {
                type_name: name.to_string(),
            },
            format!(
                "invalidations on single-owner granules ({:.0}% foreign): false sharing",
                100.0 * sharing.foreign_fraction
            ),
        )
    } else if sharing.concurrency < PIN_CONCURRENCY_MAX {
        (
            FixSpec::Pin {
                type_name: name.to_string(),
            },
            format!(
                "invalidations from serial migration ({:.1} cores/round): pin to home core",
                sharing.concurrency
            ),
        )
    } else {
        (
            FixSpec::Localize {
                type_name: name.to_string(),
            },
            format!(
                "invalidations from concurrent sharing ({:.1} cores/round): per-core copies",
                sharing.concurrency
            ),
        )
    }
}

/// Runs the full `dprof whatif` subcommand and returns the process exit code.
pub fn run_whatif(options: &WhatifOptions) -> i32 {
    let file = match TraceFile::read(&options.input) {
        Ok(file) => file,
        Err(message) => {
            eprintln!("error: {message}");
            return 1;
        }
    };
    eprintln!(
        "what-if analysis of {} ({} workload, {} stream(s))...",
        options.input,
        file.params.workload,
        file.streams.len()
    );
    let analysis = match analyze_trace(&file, &options.fixes, options.auto) {
        Ok(analysis) => analysis,
        Err(message) => {
            eprintln!("error: {message}");
            return 1;
        }
    };
    let rendered = match options.format {
        Format::Text => render_whatif_text(&analysis, options),
        Format::Json => render_whatif_json(&analysis, options).to_pretty_string(),
    };
    crate::emit(&rendered, &options.output)
}

fn fmt_pct(x: f64) -> String {
    format!("{:+.2}%", 100.0 * x)
}

/// Renders the human-readable ranking.
pub fn render_whatif_text(a: &WhatifAnalysis, options: &WhatifOptions) -> String {
    let mut out = String::new();
    writeln!(out, "dprof whatif — {}", options.input).unwrap();
    writeln!(
        out,
        "baseline: {} cycles over {} round(s) x {} stream(s) ({:.6}s simulated)",
        a.baseline_cycles, a.rounds, a.streams, a.baseline_seconds
    )
    .unwrap();
    writeln!(
        out,
        "\n{:<4} {:<28} {:>14} {:>8} {:>9} {:>9} {:>7}",
        "rank", "fix", "predicted gain", "speedup", "improved", "confident", "stable"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(85)).unwrap();
    for (rank, c) in a.candidates.iter().enumerate() {
        let e = &c.estimate;
        writeln!(
            out,
            "{:<4} {:<28} {:>14} {:>7.2}x {:>9} {:>9} {:>7}",
            rank + 1,
            c.spec.to_string(),
            fmt_pct(e.gain),
            e.speedup,
            format!("{}/{}", e.blocks_improved, e.blocks),
            if e.confident { "yes" } else { "no" },
            if c.rank_stable { "yes" } else { "no" },
        )
        .unwrap();
        writeln!(out, "     - {}", c.source).unwrap();
    }
    if let Some(best) = a.candidates.first() {
        writeln!(
            out,
            "\nbest fix {}: predicted {} end-to-end ({})",
            best.spec,
            fmt_pct(best.estimate.gain),
            if best.estimate.confident {
                "confident: the Wilson 95% low bound has most blocks improving"
            } else {
                "NOT confident: the block votes do not separate it from noise"
            }
        )
        .unwrap();
    }
    out
}

/// Builds the `dprof-whatif/v1` JSON document.
pub fn render_whatif_json(a: &WhatifAnalysis, options: &WhatifOptions) -> Json {
    Json::obj(vec![
        ("schema", Json::str(WHATIF_SCHEMA)),
        ("trace", Json::str(&options.input)),
        ("streams", Json::num(a.streams as u32)),
        ("rounds", Json::num(a.rounds as u32)),
        ("baseline_cycles", Json::num(a.baseline_cycles as f64)),
        ("baseline_seconds", Json::num(a.baseline_seconds)),
        (
            "candidates",
            Json::Arr(
                a.candidates
                    .iter()
                    .enumerate()
                    .map(|(rank, c)| {
                        let e = &c.estimate;
                        Json::obj(vec![
                            ("rank", Json::num((rank + 1) as u32)),
                            ("fix", Json::str(c.spec.to_string())),
                            ("kind", Json::str(c.spec.kind())),
                            (
                                "target",
                                c.spec.target().map(Json::str).unwrap_or(Json::Null),
                            ),
                            ("source", Json::str(&c.source)),
                            ("predicted_gain", Json::num(e.gain)),
                            ("speedup", Json::num(e.speedup)),
                            ("base_cycles", Json::num(e.base_cycles as f64)),
                            ("fix_cycles", Json::num(e.fix_cycles as f64)),
                            ("blocks", Json::num(e.blocks as f64)),
                            ("blocks_improved", Json::num(e.blocks_improved as f64)),
                            (
                                "win_ci",
                                Json::Arr(vec![Json::num(e.win_ci.0), Json::num(e.win_ci.1)]),
                            ),
                            ("confident", Json::Bool(e.confident)),
                            (
                                "gain_ci",
                                Json::Arr(vec![Json::num(e.gain_ci.0), Json::num(e.gain_ci.1)]),
                            ),
                            ("rank_stable", Json::Bool(c.rank_stable)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}
