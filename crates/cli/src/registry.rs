//! The declarative subcommand registry.
//!
//! Every `dprof` subcommand is one [`Subcommand`] row: its name, the synopsis
//! and description lines the `--help` synopsis is generated from, the parser
//! for its flags, and the executor for its parsed options.  [`crate::args::parse`]
//! routes the first argument through [`find`], and [`dispatch`] routes the
//! parsed result to the executor — adding a subcommand means adding one row
//! here (plus its `Parsed` variant), not editing two hand-maintained `match`es
//! and a help string.

use crate::args::Parsed;

/// One registered subcommand.
pub struct Subcommand {
    /// The first-argument spelling (`dprof <name> ...`).
    pub name: &'static str,
    /// Synopsis column of the generated help (`dprof serve [OPTIONS]`).
    pub synopsis: &'static str,
    /// Description lines; the first follows the synopsis column, the rest are
    /// printed as indented continuations.
    pub about: &'static [&'static str],
    /// Parses the arguments after the subcommand name.
    pub parse: fn(&[String]) -> Result<Parsed, String>,
    /// Executes a parsed invocation of this subcommand.
    pub exec: fn(Parsed) -> i32,
}

/// Every subcommand, in help order.  `run` doubles as the default when the
/// first argument is a flag (or absent) — see [`crate::args::parse`].
pub fn registry() -> &'static [Subcommand] {
    const REGISTRY: &[Subcommand] = &[
        Subcommand {
            name: "run",
            synopsis: "dprof [run] [OPTIONS]",
            about: &["profile a workload live"],
            parse: crate::args::parse_run,
            exec: exec_run,
        },
        Subcommand {
            name: "record",
            synopsis: "dprof record [OPTIONS]",
            about: &["profile AND capture a replayable .dtrace session"],
            parse: crate::args::parse_record,
            exec: exec_run,
        },
        Subcommand {
            name: "replay",
            synopsis: "dprof replay <FILE> [OPTIONS]",
            about: &[
                "re-profile a recorded session (no workload runs;",
                "the report is byte-identical to the recorded run's)",
            ],
            parse: crate::args::parse_replay,
            exec: exec_replay,
        },
        Subcommand {
            name: "diff",
            synopsis: "dprof diff <A.json> <B.json>",
            about: &[
                "compare two JSON reports: per-type deltas plus a",
                "bottleneck verdict (eliminated / moved / reduced /",
                "unchanged / worsened)",
            ],
            parse: crate::args::parse_diff,
            exec: exec_diff,
        },
        Subcommand {
            name: "accuracy",
            synopsis: "dprof accuracy [OPTIONS]",
            about: &[
                "profile under sampling AND exact ground truth in",
                "one run, and report sampling fidelity (per-type",
                "share error, top-K rank agreement, samples spent)",
            ],
            parse: crate::args::parse_accuracy,
            exec: exec_accuracy,
        },
        Subcommand {
            name: "whatif",
            synopsis: "dprof whatif <FILE> [OPTIONS]",
            about: &[
                "rank hypothetical fixes by predicted throughput",
                "gain, measured by counterfactual replay of a",
                "recorded .dtrace session",
            ],
            parse: crate::args::parse_whatif,
            exec: exec_whatif,
        },
        Subcommand {
            name: "serve",
            synopsis: "dprof serve [OPTIONS]",
            about: &[
                "run the continuous-profiling collector: producers",
                "stream report shards and .dtrace sessions at it; it",
                "merges per (workload, build) and answers queries",
            ],
            parse: crate::args::parse_serve,
            exec: exec_serve,
        },
        Subcommand {
            name: "loadgen",
            synopsis: "dprof loadgen [OPTIONS]",
            about: &[
                "drive a collector with concurrent producers and",
                "report sustained merge throughput (the CI gate)",
            ],
            parse: crate::args::parse_loadgen,
            exec: exec_loadgen,
        },
        Subcommand {
            name: "query",
            synopsis: "dprof query <ACTION> [OPTIONS]",
            about: &[
                "push to and query a collector: top types, build-",
                "over-build regressions, Wilson-gated alerts",
            ],
            parse: crate::args::parse_query,
            exec: exec_query,
        },
    ];
    REGISTRY
}

/// Looks a subcommand up by name.
pub fn find(name: &str) -> Option<&'static Subcommand> {
    registry().iter().find(|command| command.name == name)
}

/// Routes a parsed invocation to its subcommand's executor.
pub fn dispatch(parsed: Parsed) -> i32 {
    let Some(name) = parsed.command_name() else {
        // Help/Version are handled by the shell before dispatch.
        return 0;
    };
    match find(name) {
        Some(command) => (command.exec)(parsed),
        None => mismatch(name),
    }
}

fn mismatch(name: &str) -> i32 {
    eprintln!("error: internal dispatch mismatch for subcommand '{name}'");
    2
}

fn exec_run(parsed: Parsed) -> i32 {
    match parsed {
        Parsed::Run(options) => crate::run_profile(options),
        _ => mismatch("run"),
    }
}

fn exec_replay(parsed: Parsed) -> i32 {
    match parsed {
        Parsed::Replay(options) => crate::run_replay(&options),
        _ => mismatch("replay"),
    }
}

fn exec_diff(parsed: Parsed) -> i32 {
    match parsed {
        Parsed::Diff(options) => crate::diff::run_diff(&options),
        _ => mismatch("diff"),
    }
}

fn exec_accuracy(parsed: Parsed) -> i32 {
    match parsed {
        Parsed::Accuracy(options) => crate::accuracy::run_accuracy(&options),
        _ => mismatch("accuracy"),
    }
}

fn exec_whatif(parsed: Parsed) -> i32 {
    match parsed {
        Parsed::Whatif(options) => crate::whatif::run_whatif(&options),
        _ => mismatch("whatif"),
    }
}

fn exec_serve(parsed: Parsed) -> i32 {
    match parsed {
        Parsed::Serve(options) => crate::serve_cmd::run_serve(&options),
        _ => mismatch("serve"),
    }
}

fn exec_loadgen(parsed: Parsed) -> i32 {
    match parsed {
        Parsed::Loadgen(options) => crate::serve_cmd::run_loadgen_cmd(&options),
        _ => mismatch("loadgen"),
    }
}

fn exec_query(parsed: Parsed) -> i32 {
    match parsed {
        Parsed::Query(options) => crate::serve_cmd::run_query(&options),
        _ => mismatch("query"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for command in registry() {
            assert!(seen.insert(command.name), "duplicate '{}'", command.name);
            assert!(find(command.name).is_some());
            assert!(!command.about.is_empty(), "'{}' has no about", command.name);
            assert!(
                command.synopsis.starts_with("dprof "),
                "'{}' synopsis '{}' does not start with 'dprof '",
                command.name,
                command.synopsis
            );
        }
        assert!(find("nonsense").is_none());
    }

    #[test]
    fn every_subcommand_is_in_the_generated_help() {
        let usage = crate::args::usage();
        for command in registry() {
            assert!(
                usage.contains(command.synopsis),
                "usage() is missing the '{}' synopsis",
                command.name
            );
        }
    }
}
