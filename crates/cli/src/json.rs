//! Re-export of the core schema module's JSON support.
//!
//! The document model used to live here; the serve PR moved it to
//! `dprof-core::schema` so every emitter and parser in the workspace (CLI renderers,
//! diff loading, the serve store and its clients) shares one implementation.  This
//! shim keeps the historical `dprof_cli::json::Json` path working.

pub use dprof::core::schema::{all_keys, Json};
