//! A tiny, dependency-free JSON document model with an emitter and a parser.
//!
//! The workspace builds fully offline (no `serde_json`), so the CLI carries its own
//! minimal JSON support: [`Json`] values are built explicitly by the report renderer,
//! emitted with [`Json::to_pretty_string`], and re-read with [`Json::parse`] (used by
//! the integration tests and by anyone post-processing `dprof --format json` output in
//! Rust).  Object key order is preserved, so reports are byte-stable across runs with
//! identical inputs.

use std::collections::VecDeque;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, emitted without a fraction when integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on emit.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object values.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for numbers.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Emits the value as pretty-printed JSON (two-space indent, trailing newline).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, level + 1);
                    item.write_into(out, level + 1);
                }
                out.push('\n');
                indent(out, level);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, level + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_into(out, level + 1);
                }
                out.push('\n');
                indent(out, level);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.  Returns a message with a byte offset on error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing data at byte {}", parser.pos));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our emitter; map lone
                            // surrogates to the replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {start}")),
                    }
                }
                Some(b) => {
                    // Consume one UTF-8 scalar, validating only its own bytes (not the
                    // whole remaining input, which would make parsing quadratic).
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(format!("invalid utf-8 at byte {start}")),
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or("truncated utf-8 sequence")?;
                    let text = std::str::from_utf8(chunk).map_err(|_| "invalid utf-8")?;
                    s.push_str(text);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Breadth-first search for every object key in a document (test helper).
pub fn all_keys(root: &Json) -> Vec<String> {
    let mut keys = Vec::new();
    let mut queue: VecDeque<&Json> = VecDeque::new();
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        match v {
            Json::Obj(fields) => {
                for (k, child) in fields {
                    keys.push(k.clone());
                    queue.push_back(child);
                }
            }
            Json::Arr(items) => queue.extend(items.iter()),
            _ => {}
        }
    }
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Json::obj(vec![
            ("name", Json::str("skbuff")),
            ("bounce", Json::Bool(true)),
            ("pct", Json::num(45.4)),
            ("count", Json::num(1234u32)),
            (
                "tags",
                Json::Arr(vec![Json::str("a \"quoted\" one"), Json::Null]),
            ),
            (
                "nested",
                Json::obj(vec![
                    ("empty_arr", Json::Arr(vec![])),
                    ("empty_obj", Json::Obj(vec![])),
                ]),
            ),
        ]);
        let text = doc.to_pretty_string();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, doc);
        assert_eq!(back.get("name").and_then(Json::as_str), Some("skbuff"));
        assert_eq!(back.get("pct").and_then(Json::as_f64), Some(45.4));
        assert_eq!(back.get("count").and_then(Json::as_f64), Some(1234.0));
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert!(Json::num(3u32).to_pretty_string().starts_with('3'));
        assert!(!Json::num(3u32).to_pretty_string().contains('.'));
        assert!(Json::num(2.5).to_pretty_string().starts_with("2.5"));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let doc = Json::str("line1\nline2\ttab\u{1}");
        let text = doc.to_pretty_string();
        assert!(text.contains("\\n"));
        assert!(text.contains("\\t"));
        assert!(text.contains("\\u0001"));
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }
}
