//! Symbol table: maps kernel/application "function names" to synthetic instruction
//! pointers.
//!
//! DProf's raw data (access samples and object access histories) record the instruction
//! pointer responsible for each memory access.  In the simulation, workloads annotate
//! every access with the name of the kernel function performing it; the symbol table
//! interns those names and hands out stable [`FunctionId`]s plus fake code addresses so
//! the rest of the pipeline (path traces, data-flow views, OProfile output) can work in
//! terms of instruction pointers exactly as the real tool does.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Identifier of a function (a synthetic instruction pointer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FunctionId(pub u32);

impl FunctionId {
    /// A reserved id meaning "unknown code location".
    pub const UNKNOWN: FunctionId = FunctionId(u32::MAX);

    /// The synthetic code address of this function, in a kernel-text-like range.
    pub fn fake_address(self) -> u64 {
        0xffff_ffff_8100_0000 + (self.0 as u64) * 0x200
    }
}

/// Interns function names and assigns each a [`FunctionId`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SymbolTable {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, FunctionId>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (idempotent).
    pub fn intern(&mut self, name: &str) -> FunctionId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = FunctionId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<FunctionId> {
        self.index.get(name).copied()
    }

    /// The name of a function id, or `"<unknown>"`.
    pub fn name(&self, id: FunctionId) -> &str {
        if id == FunctionId::UNKNOWN {
            return "<unknown>";
        }
        self.names
            .get(id.0 as usize)
            .map(String::as_str)
            .unwrap_or("<unknown>")
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no symbols have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all `(id, name)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (FunctionId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (FunctionId(i as u32), n.as_str()))
    }

    /// Rebuilds the name→id index (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), FunctionId(i as u32)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("dev_queue_xmit");
        let b = t.intern("dev_queue_xmit");
        assert_eq!(a, b);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn names_round_trip() {
        let mut t = SymbolTable::new();
        let a = t.intern("kfree");
        let b = t.intern("pfifo_fast_enqueue");
        assert_eq!(t.name(a), "kfree");
        assert_eq!(t.name(b), "pfifo_fast_enqueue");
        assert_eq!(t.lookup("kfree"), Some(a));
        assert_eq!(t.lookup("nope"), None);
    }

    #[test]
    fn unknown_id_has_placeholder_name() {
        let t = SymbolTable::new();
        assert_eq!(t.name(FunctionId::UNKNOWN), "<unknown>");
        assert_eq!(t.name(FunctionId(42)), "<unknown>");
    }

    #[test]
    fn fake_addresses_are_distinct_and_kernel_like() {
        let mut t = SymbolTable::new();
        let a = t.intern("a");
        let b = t.intern("b");
        assert_ne!(a.fake_address(), b.fake_address());
        assert!(a.fake_address() >= 0xffff_ffff_8100_0000);
    }

    #[test]
    fn iter_lists_everything() {
        let mut t = SymbolTable::new();
        t.intern("x");
        t.intern("y");
        let names: Vec<_> = t.iter().map(|(_, n)| n.to_string()).collect();
        assert_eq!(names, vec!["x", "y"]);
    }
}
