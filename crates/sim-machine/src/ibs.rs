//! Instruction-based sampling (IBS) unit.
//!
//! AMD's IBS hardware randomly tags an instruction about to enter the pipeline and, when
//! it retires, reports its instruction pointer, the data address it touched, whether the
//! access hit in the cache and the access latency, then raises an interrupt (§5.1 of the
//! thesis).  This module reproduces that interface: the unit is armed with a sampling
//! policy, picks operations pseudo-randomly, records an [`IbsRecord`] per sample and
//! charges the configured interrupt cost (~2,000 cycles on the paper's test machine) to
//! the sampled core.
//!
//! Two policies are supported (see `docs/sampling.md`):
//!
//! * [`SamplingPolicy::Fixed`] — the classic rate-limited mode: one sample every
//!   `interval_ops` memory operations on average, for as long as the unit is armed.
//! * [`SamplingPolicy::Adaptive`] — a *budgeted* mode: the caller specifies the maximum
//!   number of samples the whole armed phase may spend, and the unit steers its
//!   interval so the budget lasts however long the phase turns out to be.  The
//!   controller is exponential-decay: it spends half of the remaining budget per
//!   *generation*, quadrupling the mean interval at each generation boundary.  Halving
//!   the samples while quadrupling the interval means each generation covers twice the
//!   operations of the previous one — geometric growth, so the first samples arrive
//!   quickly (small workloads still get profiled) while an arbitrarily long phase can
//!   never exhaust the budget early.  The budget is a hard cap — the unit stops
//!   sampling outright once it is spent.
//!
//! Both policies are deterministic: the sample stream is a pure function of the
//! configuration (policy + seed) and the machine's access stream, which is what lets
//! `dprof replay` reproduce a recorded run's samples — and therefore its report —
//! byte for byte.

use crate::symbols::FunctionId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sim_cache::{AccessKind, CoreId, HitLevel};

/// How the IBS unit decides which memory operations to sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SamplingPolicy {
    /// Sampling off.
    Disabled,
    /// One sample every `interval_ops` memory operations on average.
    Fixed {
        /// Mean number of memory operations between samples on a given core.
        interval_ops: u64,
    },
    /// Budgeted adaptive sampling: at most `budget` samples for the whole armed
    /// phase, spread by the exponential-decay controller.
    Adaptive {
        /// Hard cap on samples taken between [`IbsUnit::configure`] calls.
        budget: u64,
    },
}

impl SamplingPolicy {
    /// A fixed-rate policy (`interval_ops` of 0 means disabled).
    pub fn fixed(interval_ops: u64) -> Self {
        if interval_ops == 0 {
            SamplingPolicy::Disabled
        } else {
            SamplingPolicy::Fixed { interval_ops }
        }
    }

    /// A budgeted adaptive policy (a `budget` of 0 means disabled).
    pub fn adaptive(budget: u64) -> Self {
        if budget == 0 {
            SamplingPolicy::Disabled
        } else {
            SamplingPolicy::Adaptive { budget }
        }
    }

    /// True unless the policy is [`SamplingPolicy::Disabled`].
    pub fn enabled(&self) -> bool {
        !matches!(self, SamplingPolicy::Disabled)
    }

    /// The adaptive budget, if this is an adaptive policy.
    pub fn budget(&self) -> Option<u64> {
        match self {
            SamplingPolicy::Adaptive { budget } => Some(*budget),
            _ => None,
        }
    }

    /// Parses the CLI / trace-header spelling: `fixed:<interval>` or
    /// `adaptive:<budget>` (both values must be positive).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (kind, value) = spec.split_once(':').ok_or_else(|| {
            format!(
                "invalid sampling policy '{spec}' (expected fixed:<interval> or adaptive:<budget>)"
            )
        })?;
        let n: u64 = value
            .parse()
            .map_err(|_| format!("invalid sampling policy value '{value}' in '{spec}'"))?;
        if n == 0 {
            return Err(format!(
                "sampling policy '{spec}' must have a positive value"
            ));
        }
        match kind {
            "fixed" => Ok(SamplingPolicy::Fixed { interval_ops: n }),
            "adaptive" => Ok(SamplingPolicy::Adaptive { budget: n }),
            other => Err(format!(
                "unknown sampling policy '{other}' (expected fixed or adaptive)"
            )),
        }
    }
}

impl std::fmt::Display for SamplingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SamplingPolicy::Disabled => f.write_str("disabled"),
            SamplingPolicy::Fixed { interval_ops } => write!(f, "fixed:{interval_ops}"),
            SamplingPolicy::Adaptive { budget } => write!(f, "adaptive:{budget}"),
        }
    }
}

/// Configuration of the IBS unit.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IbsConfig {
    /// Which operations to sample.
    pub policy: SamplingPolicy,
    /// Cycles charged to the core for each sample interrupt (the thesis measures
    /// ~2,000 cycles, half of which is reading the IBS registers).
    pub interrupt_cost: u64,
    /// RNG seed so profiling runs are reproducible.
    pub seed: u64,
}

impl Default for IbsConfig {
    fn default() -> Self {
        IbsConfig {
            policy: SamplingPolicy::Disabled,
            interrupt_cost: 2_000,
            seed: 0x1b5,
        }
    }
}

impl IbsConfig {
    /// Enabled fixed-rate configuration sampling every `interval_ops` operations on
    /// average.
    pub fn with_interval(interval_ops: u64) -> Self {
        Self::with_policy(SamplingPolicy::fixed(interval_ops))
    }

    /// Enabled configuration with an arbitrary policy.
    pub fn with_policy(policy: SamplingPolicy) -> Self {
        IbsConfig {
            policy,
            ..Default::default()
        }
    }

    /// True if sampling is enabled.
    pub fn enabled(&self) -> bool {
        self.policy.enabled()
    }
}

/// One IBS sample: everything the hardware reports about a tagged memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IbsRecord {
    /// Core the tagged instruction executed on.
    pub core: CoreId,
    /// Instruction pointer (synthetic function id).
    pub ip: FunctionId,
    /// Data (virtual = physical in our simulation) address accessed.
    pub addr: u64,
    /// Whether the operation was a load or a store.
    pub kind: AccessKind,
    /// Which level of the memory system satisfied the access.
    pub level: HitLevel,
    /// Access latency in cycles.
    pub latency: u64,
    /// Core-local cycle count when the sample retired.
    pub cycle: u64,
}

/// First-generation mean interval of the adaptive controller: aggressively small, so
/// even a short phase spends most of its budget (a stream of `4 * budget / 2`
/// operations already exhausts generation 0) before the interval starts growing.
const ADAPTIVE_BASE_INTERVAL: u64 = 4;

/// Ceiling on the adaptive interval; beyond this the budget is effectively being
/// preserved for the tail of a very long phase and further doubling adds nothing.
const ADAPTIVE_MAX_INTERVAL: u64 = 1 << 20;

/// The per-machine IBS sampling unit.
#[derive(Debug, Clone)]
pub struct IbsUnit {
    config: IbsConfig,
    /// Per-core countdown until the next tagged operation.
    countdown: Vec<u64>,
    rng: StdRng,
    /// Collected samples, drained by the profiler.
    buffer: Vec<IbsRecord>,
    /// Total interrupt cycles charged, for overhead accounting (Figure 6-2).
    pub interrupt_cycles: u64,
    /// Total number of samples taken over the unit's lifetime.
    pub samples_taken: u64,
    /// Samples taken since the last [`Self::configure`] — what the adaptive budget
    /// is accounted against.
    phase_samples: u64,
    /// Mean re-arm interval currently in force (fixed: the configured interval;
    /// adaptive: quadruples at each generation boundary).
    current_interval: u64,
    /// Adaptive mode: samples left in the current generation before the interval
    /// grows.  Unused in fixed mode.
    generation_remaining: u64,
}

impl IbsUnit {
    /// Creates a disabled IBS unit for `cores` cores.
    pub fn new(cores: usize) -> Self {
        IbsUnit {
            config: IbsConfig::default(),
            countdown: vec![u64::MAX; cores],
            rng: StdRng::seed_from_u64(IbsConfig::default().seed),
            buffer: Vec::new(),
            interrupt_cycles: 0,
            samples_taken: 0,
            phase_samples: 0,
            current_interval: 0,
            generation_remaining: 0,
        }
    }

    /// Reconfigures (and re-arms) the unit.  All controller state — RNG, per-core
    /// countdowns, the adaptive generation ladder and the phase sample counter — is
    /// reset, so a sampling phase is a pure function of the configuration and the
    /// access stream that follows (the record/replay determinism contract).
    pub fn configure(&mut self, config: IbsConfig) {
        self.config = config;
        self.rng = StdRng::seed_from_u64(config.seed);
        self.phase_samples = 0;
        match config.policy {
            SamplingPolicy::Disabled => {
                self.current_interval = 0;
                self.generation_remaining = 0;
            }
            SamplingPolicy::Fixed { interval_ops } => {
                self.current_interval = interval_ops;
                self.generation_remaining = 0;
            }
            SamplingPolicy::Adaptive { budget } => {
                self.current_interval = ADAPTIVE_BASE_INTERVAL;
                // First generation: half the budget (every generation spends half of
                // what is left, so the ladder never runs dry before the phase ends).
                self.generation_remaining = (budget / 2).max(1);
            }
        }
        let cores = self.countdown.len();
        self.countdown = (0..cores).map(|_| self.next_interval()).collect();
    }

    /// The active configuration.
    pub fn config(&self) -> IbsConfig {
        self.config
    }

    /// Samples taken since the last [`Self::configure`] (what an adaptive budget is
    /// charged against).
    pub fn phase_samples(&self) -> u64 {
        self.phase_samples
    }

    /// The mean re-arm interval currently in force (diagnostic; the adaptive
    /// controller quadruples it at each generation boundary).
    pub fn current_interval(&self) -> u64 {
        self.current_interval
    }

    /// True if an adaptive budget is configured and fully spent.
    pub fn budget_exhausted(&self) -> bool {
        match self.config.policy {
            SamplingPolicy::Adaptive { budget } => self.phase_samples >= budget,
            _ => false,
        }
    }

    fn next_interval(&mut self) -> u64 {
        if !self.config.enabled() || self.budget_exhausted() {
            return u64::MAX;
        }
        // Real IBS uses a fixed maximum count with a randomized low-order offset; we
        // draw uniformly in [interval/2, 3*interval/2] which has the same mean.
        let base = self.current_interval;
        let lo = (base / 2).max(1);
        let hi = base.saturating_add(base / 2);
        self.rng.gen_range(lo..=hi.max(lo))
    }

    /// Adaptive bookkeeping after a sample fires: consume one generation slot and, at
    /// the generation boundary, budget half of what remains for the next generation
    /// while quadrupling the interval (so each generation spans twice the operations
    /// of the one before it).
    fn note_adaptive_sample(&mut self) {
        let SamplingPolicy::Adaptive { budget } = self.config.policy else {
            return;
        };
        self.generation_remaining = self.generation_remaining.saturating_sub(1);
        if self.generation_remaining == 0 {
            let remaining = budget.saturating_sub(self.phase_samples);
            self.generation_remaining = (remaining / 2).max(1).min(remaining.max(1));
            self.current_interval = (self.current_interval * 4).min(ADAPTIVE_MAX_INTERVAL);
        }
    }

    /// Notifies the unit of a completed memory operation.  Returns the cycles of
    /// interrupt overhead to charge to the core (zero unless this op was sampled).
    #[allow(clippy::too_many_arguments)]
    pub fn on_access(
        &mut self,
        core: CoreId,
        ip: FunctionId,
        addr: u64,
        kind: AccessKind,
        level: HitLevel,
        latency: u64,
        cycle: u64,
    ) -> u64 {
        if !self.config.enabled() {
            return 0;
        }
        let cd = &mut self.countdown[core];
        if *cd > 1 {
            *cd -= 1;
            return 0;
        }
        if self.budget_exhausted() {
            // The adaptive budget is a hard cap: park the core instead of sampling.
            self.countdown[core] = u64::MAX;
            return 0;
        }
        // Sample fires.
        self.phase_samples += 1;
        self.note_adaptive_sample();
        self.countdown[core] = self.next_interval();
        self.buffer.push(IbsRecord {
            core,
            ip,
            addr,
            kind,
            level,
            latency,
            cycle,
        });
        self.samples_taken += 1;
        self.interrupt_cycles += self.config.interrupt_cost;
        self.config.interrupt_cost
    }

    /// Drains all collected samples.
    pub fn drain(&mut self) -> Vec<IbsRecord> {
        std::mem::take(&mut self.buffer)
    }

    /// Number of samples currently buffered.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Memory used by buffered samples, in bytes (the thesis reports 88 bytes per
    /// access sample; our in-memory record is close to that).
    pub fn buffered_bytes(&self) -> usize {
        self.buffer.len() * std::mem::size_of::<IbsRecord>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_args() -> (FunctionId, u64, AccessKind, HitLevel, u64) {
        (FunctionId(1), 0x1000, AccessKind::Read, HitLevel::L1, 3)
    }

    #[test]
    fn disabled_unit_never_samples() {
        let mut u = IbsUnit::new(2);
        let (ip, addr, kind, level, lat) = sample_args();
        for i in 0..10_000 {
            assert_eq!(u.on_access(0, ip, addr, kind, level, lat, i), 0);
        }
        assert_eq!(u.buffered(), 0);
        assert_eq!(u.samples_taken, 0);
    }

    #[test]
    fn enabled_unit_samples_at_roughly_the_configured_rate() {
        let mut u = IbsUnit::new(1);
        u.configure(IbsConfig::with_interval(100));
        let (ip, addr, kind, level, lat) = sample_args();
        let n = 100_000u64;
        for i in 0..n {
            u.on_access(0, ip, addr, kind, level, lat, i);
        }
        let expected = n / 100;
        let got = u.samples_taken;
        assert!(
            got > expected / 2 && got < expected * 2,
            "expected ~{expected} samples, got {got}"
        );
    }

    #[test]
    fn sampling_charges_interrupt_cost() {
        let mut u = IbsUnit::new(1);
        u.configure(IbsConfig {
            policy: SamplingPolicy::fixed(10),
            interrupt_cost: 2_000,
            seed: 7,
        });
        let (ip, addr, kind, level, lat) = sample_args();
        let mut charged = 0;
        for i in 0..1_000 {
            charged += u.on_access(0, ip, addr, kind, level, lat, i);
        }
        assert_eq!(charged, u.samples_taken * 2_000);
        assert_eq!(u.interrupt_cycles, charged);
    }

    #[test]
    fn samples_carry_access_details() {
        let mut u = IbsUnit::new(1);
        u.configure(IbsConfig {
            policy: SamplingPolicy::fixed(1),
            interrupt_cost: 0,
            seed: 1,
        });
        u.on_access(
            0,
            FunctionId(9),
            0xdead,
            AccessKind::Write,
            HitLevel::RemoteCache,
            200,
            42,
        );
        // interval 1 means every access is eligible; the very first countdown may be 1.
        let drained = u.drain();
        assert!(!drained.is_empty());
        let r = drained[0];
        assert_eq!(r.ip, FunctionId(9));
        assert_eq!(r.addr, 0xdead);
        assert_eq!(r.level, HitLevel::RemoteCache);
        assert_eq!(u.buffered(), 0);
    }

    #[test]
    fn reconfigure_resets_reproducibly() {
        let run = |seed| {
            let mut u = IbsUnit::new(1);
            u.configure(IbsConfig {
                policy: SamplingPolicy::fixed(50),
                interrupt_cost: 0,
                seed,
            });
            let (ip, addr, kind, level, lat) = sample_args();
            for i in 0..10_000 {
                u.on_access(0, ip, addr, kind, level, lat, i);
            }
            u.samples_taken
        };
        assert_eq!(run(3), run(3), "same seed must give same sample count");
    }

    #[test]
    fn policy_parse_and_display_round_trip() {
        assert_eq!(
            SamplingPolicy::parse("fixed:200").unwrap(),
            SamplingPolicy::Fixed { interval_ops: 200 }
        );
        assert_eq!(
            SamplingPolicy::parse("adaptive:5000").unwrap(),
            SamplingPolicy::Adaptive { budget: 5000 }
        );
        for spec in ["fixed:200", "adaptive:5000"] {
            assert_eq!(SamplingPolicy::parse(spec).unwrap().to_string(), spec);
        }
        for bad in [
            "fixed",
            "fixed:",
            "fixed:0",
            "adaptive:0",
            "adaptive:x",
            "nope:5",
            "200",
        ] {
            assert!(
                SamplingPolicy::parse(bad).is_err(),
                "'{bad}' must not parse"
            );
        }
        assert_eq!(SamplingPolicy::fixed(0), SamplingPolicy::Disabled);
        assert_eq!(SamplingPolicy::adaptive(0), SamplingPolicy::Disabled);
    }

    #[test]
    fn adaptive_budget_is_a_hard_cap() {
        let (ip, addr, kind, level, lat) = sample_args();
        for budget in [1u64, 2, 7, 100, 1_000] {
            let mut u = IbsUnit::new(4);
            u.configure(IbsConfig {
                policy: SamplingPolicy::adaptive(budget),
                interrupt_cost: 0,
                seed: 9,
            });
            for i in 0..200_000u64 {
                u.on_access((i % 4) as usize, ip, addr, kind, level, lat, i);
            }
            assert!(
                u.phase_samples() <= budget,
                "budget {budget} exceeded: {} samples",
                u.phase_samples()
            );
            assert!(
                u.samples_taken > 0,
                "budget {budget} took no samples at all"
            );
        }
    }

    #[test]
    fn adaptive_interval_grows_across_generations() {
        let (ip, addr, kind, level, lat) = sample_args();
        let mut u = IbsUnit::new(1);
        u.configure(IbsConfig {
            policy: SamplingPolicy::adaptive(64),
            interrupt_cost: 0,
            seed: 5,
        });
        assert_eq!(u.current_interval(), ADAPTIVE_BASE_INTERVAL);
        // Spend the first generation (32 samples) and then some.
        for i in 0..20_000u64 {
            u.on_access(0, ip, addr, kind, level, lat, i);
        }
        assert!(
            u.current_interval() > ADAPTIVE_BASE_INTERVAL,
            "interval should have grown at least once, still {}",
            u.current_interval()
        );
        assert!(u.phase_samples() <= 64);
    }

    #[test]
    fn adaptive_spreads_samples_over_a_long_phase() {
        // With a fixed interval of 32 a 200k-op stream would burn ~6250 samples; the
        // adaptive controller must keep some budget alive into the last tenth of the
        // stream instead of exhausting it at the start.
        let (ip, addr, kind, level, lat) = sample_args();
        let mut u = IbsUnit::new(1);
        u.configure(IbsConfig {
            policy: SamplingPolicy::adaptive(200),
            interrupt_cost: 0,
            seed: 3,
        });
        let n = 200_000u64;
        let mut last_sample_at = 0u64;
        for i in 0..n {
            let before = u.buffered();
            u.on_access(0, ip, addr, kind, level, lat, i);
            if u.buffered() > before {
                last_sample_at = i;
            }
        }
        assert!(u.phase_samples() <= 200);
        assert!(
            last_sample_at > n / 2,
            "budget exhausted too early: last sample at op {last_sample_at} of {n}"
        );
    }
}
