//! Instruction-based sampling (IBS) unit.
//!
//! AMD's IBS hardware randomly tags an instruction about to enter the pipeline and, when
//! it retires, reports its instruction pointer, the data address it touched, whether the
//! access hit in the cache and the access latency, then raises an interrupt (§5.1 of the
//! thesis).  This module reproduces that interface: the unit is armed with a sampling
//! interval, picks operations pseudo-randomly, records an [`IbsRecord`] per sample and
//! charges the configured interrupt cost (~2,000 cycles on the paper's test machine) to
//! the sampled core.

use crate::symbols::FunctionId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use sim_cache::{AccessKind, CoreId, HitLevel};

/// Configuration of the IBS unit.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IbsConfig {
    /// Average number of memory operations between samples on a given core.
    /// `0` disables sampling entirely.
    pub interval_ops: u64,
    /// Cycles charged to the core for each sample interrupt (the thesis measures
    /// ~2,000 cycles, half of which is reading the IBS registers).
    pub interrupt_cost: u64,
    /// RNG seed so profiling runs are reproducible.
    pub seed: u64,
}

impl Default for IbsConfig {
    fn default() -> Self {
        IbsConfig {
            interval_ops: 0,
            interrupt_cost: 2_000,
            seed: 0x1b5,
        }
    }
}

impl IbsConfig {
    /// Enabled configuration sampling every `interval_ops` operations on average.
    pub fn with_interval(interval_ops: u64) -> Self {
        IbsConfig {
            interval_ops,
            ..Default::default()
        }
    }

    /// True if sampling is enabled.
    pub fn enabled(&self) -> bool {
        self.interval_ops > 0
    }
}

/// One IBS sample: everything the hardware reports about a tagged memory operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IbsRecord {
    /// Core the tagged instruction executed on.
    pub core: CoreId,
    /// Instruction pointer (synthetic function id).
    pub ip: FunctionId,
    /// Data (virtual = physical in our simulation) address accessed.
    pub addr: u64,
    /// Whether the operation was a load or a store.
    pub kind: AccessKind,
    /// Which level of the memory system satisfied the access.
    pub level: HitLevel,
    /// Access latency in cycles.
    pub latency: u64,
    /// Core-local cycle count when the sample retired.
    pub cycle: u64,
}

/// The per-machine IBS sampling unit.
#[derive(Debug, Clone)]
pub struct IbsUnit {
    config: IbsConfig,
    /// Per-core countdown until the next tagged operation.
    countdown: Vec<u64>,
    rng: StdRng,
    /// Collected samples, drained by the profiler.
    buffer: Vec<IbsRecord>,
    /// Total interrupt cycles charged, for overhead accounting (Figure 6-2).
    pub interrupt_cycles: u64,
    /// Total number of samples taken.
    pub samples_taken: u64,
}

impl IbsUnit {
    /// Creates a disabled IBS unit for `cores` cores.
    pub fn new(cores: usize) -> Self {
        IbsUnit {
            config: IbsConfig::default(),
            countdown: vec![u64::MAX; cores],
            rng: StdRng::seed_from_u64(IbsConfig::default().seed),
            buffer: Vec::new(),
            interrupt_cycles: 0,
            samples_taken: 0,
        }
    }

    /// Reconfigures (and re-arms) the unit.
    pub fn configure(&mut self, config: IbsConfig) {
        self.config = config;
        self.rng = StdRng::seed_from_u64(config.seed);
        let cores = self.countdown.len();
        self.countdown = (0..cores).map(|_| self.next_interval()).collect();
    }

    /// The active configuration.
    pub fn config(&self) -> IbsConfig {
        self.config
    }

    fn next_interval(&mut self) -> u64 {
        if !self.config.enabled() {
            return u64::MAX;
        }
        // Real IBS uses a fixed maximum count with a randomized low-order offset; we
        // draw uniformly in [interval/2, 3*interval/2] which has the same mean.
        let base = self.config.interval_ops;
        let lo = (base / 2).max(1);
        let hi = base + base / 2;
        self.rng.gen_range(lo..=hi.max(lo))
    }

    /// Notifies the unit of a completed memory operation.  Returns the cycles of
    /// interrupt overhead to charge to the core (zero unless this op was sampled).
    #[allow(clippy::too_many_arguments)]
    pub fn on_access(
        &mut self,
        core: CoreId,
        ip: FunctionId,
        addr: u64,
        kind: AccessKind,
        level: HitLevel,
        latency: u64,
        cycle: u64,
    ) -> u64 {
        if !self.config.enabled() {
            return 0;
        }
        let cd = &mut self.countdown[core];
        if *cd > 1 {
            *cd -= 1;
            return 0;
        }
        // Sample fires.
        self.countdown[core] = self.next_interval();
        self.buffer.push(IbsRecord {
            core,
            ip,
            addr,
            kind,
            level,
            latency,
            cycle,
        });
        self.samples_taken += 1;
        self.interrupt_cycles += self.config.interrupt_cost;
        self.config.interrupt_cost
    }

    /// Drains all collected samples.
    pub fn drain(&mut self) -> Vec<IbsRecord> {
        std::mem::take(&mut self.buffer)
    }

    /// Number of samples currently buffered.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Memory used by buffered samples, in bytes (the thesis reports 88 bytes per
    /// access sample; our in-memory record is close to that).
    pub fn buffered_bytes(&self) -> usize {
        self.buffer.len() * std::mem::size_of::<IbsRecord>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_args() -> (FunctionId, u64, AccessKind, HitLevel, u64) {
        (FunctionId(1), 0x1000, AccessKind::Read, HitLevel::L1, 3)
    }

    #[test]
    fn disabled_unit_never_samples() {
        let mut u = IbsUnit::new(2);
        let (ip, addr, kind, level, lat) = sample_args();
        for i in 0..10_000 {
            assert_eq!(u.on_access(0, ip, addr, kind, level, lat, i), 0);
        }
        assert_eq!(u.buffered(), 0);
        assert_eq!(u.samples_taken, 0);
    }

    #[test]
    fn enabled_unit_samples_at_roughly_the_configured_rate() {
        let mut u = IbsUnit::new(1);
        u.configure(IbsConfig::with_interval(100));
        let (ip, addr, kind, level, lat) = sample_args();
        let n = 100_000u64;
        for i in 0..n {
            u.on_access(0, ip, addr, kind, level, lat, i);
        }
        let expected = n / 100;
        let got = u.samples_taken;
        assert!(
            got > expected / 2 && got < expected * 2,
            "expected ~{expected} samples, got {got}"
        );
    }

    #[test]
    fn sampling_charges_interrupt_cost() {
        let mut u = IbsUnit::new(1);
        u.configure(IbsConfig {
            interval_ops: 10,
            interrupt_cost: 2_000,
            seed: 7,
        });
        let (ip, addr, kind, level, lat) = sample_args();
        let mut charged = 0;
        for i in 0..1_000 {
            charged += u.on_access(0, ip, addr, kind, level, lat, i);
        }
        assert_eq!(charged, u.samples_taken * 2_000);
        assert_eq!(u.interrupt_cycles, charged);
    }

    #[test]
    fn samples_carry_access_details() {
        let mut u = IbsUnit::new(1);
        u.configure(IbsConfig {
            interval_ops: 1,
            interrupt_cost: 0,
            seed: 1,
        });
        u.on_access(
            0,
            FunctionId(9),
            0xdead,
            AccessKind::Write,
            HitLevel::RemoteCache,
            200,
            42,
        );
        // interval 1 means every access is eligible; the very first countdown may be 1.
        let drained = u.drain();
        assert!(!drained.is_empty());
        let r = drained[0];
        assert_eq!(r.ip, FunctionId(9));
        assert_eq!(r.addr, 0xdead);
        assert_eq!(r.level, HitLevel::RemoteCache);
        assert_eq!(u.buffered(), 0);
    }

    #[test]
    fn reconfigure_resets_reproducibly() {
        let run = |seed| {
            let mut u = IbsUnit::new(1);
            u.configure(IbsConfig {
                interval_ops: 50,
                interrupt_cost: 0,
                seed,
            });
            let (ip, addr, kind, level, lat) = sample_args();
            for i in 0..10_000 {
                u.on_access(0, ip, addr, kind, level, lat, i);
            }
            u.samples_taken
        };
        assert_eq!(run(3), run(3), "same seed must give same sample count");
    }
}
