//! The simulated multicore machine: per-core cycle clocks, memory accesses routed
//! through the cache hierarchy, always-on per-function performance counters, the IBS
//! sampling unit and the watchpoint unit.

use crate::ibs::{IbsConfig, IbsUnit};
use crate::session::{SessionEvent, SessionRecorder};
use crate::symbols::{FunctionId, SymbolTable};
use crate::watchpoint::{WatchpointError, WatchpointId, WatchpointUnit};
use serde::{Deserialize, Serialize};
use sim_cache::{
    granule_mask, AccessKind, AccessOutcome, CacheHierarchy, CoreId, GroundTruthTally,
    HierarchyConfig, HitLevel, LineAddr, MissKind, UtilizationTally,
};
use std::collections::HashMap;

/// Machine-wide configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Cache hierarchy configuration (includes the core count).
    pub hierarchy: HierarchyConfig,
    /// Simulated clock frequency, cycles per second.  Used to convert cycle counts into
    /// wall-clock seconds, sampling rates and throughput numbers.
    pub cycles_per_second: u64,
    /// Fixed instruction cost, in cycles, charged per memory operation on top of the
    /// memory latency (models the non-memory work around each access).
    pub op_cost: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            hierarchy: HierarchyConfig::paper_machine(),
            cycles_per_second: 3_000_000_000,
            op_cost: 1,
        }
    }
}

impl MachineConfig {
    /// The 16-core configuration used for paper-scale experiments.
    pub fn paper_machine() -> Self {
        Self::default()
    }

    /// A small 2-core configuration for tests.
    pub fn small_test() -> Self {
        MachineConfig {
            hierarchy: HierarchyConfig::small_test(),
            cycles_per_second: 1_000_000_000,
            op_cost: 1,
        }
    }

    /// Same as the paper machine but with a custom core count.
    pub fn with_cores(cores: usize) -> Self {
        MachineConfig {
            hierarchy: HierarchyConfig::with_cores(cores),
            ..Self::default()
        }
    }
}

/// Always-on per-function performance counters, equivalent to what a hardware-counter
/// profiler like OProfile accumulates per instruction pointer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionCounters {
    /// Cycles attributed to the function (memory latency + op cost + compute).
    pub cycles: u64,
    /// Memory operations issued by the function.
    pub accesses: u64,
    /// Accesses that missed the L1.
    pub l1_misses: u64,
    /// Accesses that missed both private caches ("L2 misses" in the paper's tables).
    pub l2_misses: u64,
}

/// One memory operation in a batched [`Machine::access_run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessReq {
    /// Byte address of the first accessed byte.
    pub addr: u64,
    /// Access length in bytes (non-zero; may span cache lines).
    pub len: u64,
    /// Load or store.
    pub kind: AccessKind,
}

impl AccessReq {
    /// A read request.
    pub fn read(addr: u64, len: u64) -> Self {
        AccessReq {
            addr,
            len,
            kind: AccessKind::Read,
        }
    }

    /// A write request.
    pub fn write(addr: u64, len: u64) -> Self {
        AccessReq {
            addr,
            len,
            kind: AccessKind::Write,
        }
    }
}

/// The simulated machine.
#[derive(Debug, Clone)]
pub struct Machine {
    config: MachineConfig,
    /// The shared cache hierarchy.
    pub hierarchy: CacheHierarchy,
    /// The symbol table for function-name interning.
    pub symbols: SymbolTable,
    /// The IBS sampling unit.
    pub ibs: IbsUnit,
    /// The debug-register watchpoint unit.
    pub watchpoints: WatchpointUnit,
    clocks: Vec<u64>,
    /// Per-function counters, indexed densely by [`FunctionId`] (interned ids are
    /// small sequential integers, so this is an array index instead of a hash lookup
    /// on every access).
    fn_counters: Vec<FunctionCounters>,
    /// Counters attributed to [`FunctionId::UNKNOWN`].
    unknown_counters: FunctionCounters,
    /// Reused outcome buffer for [`Self::access_run`].
    run_outcomes: Vec<AccessOutcome>,
    /// Cycles charged for profiling interrupts, per core (IBS + watchpoints), so the
    /// overhead experiments can separate application time from profiling time.
    profiling_cycles: Vec<u64>,
    /// Session-event recorder for the trace record/replay subsystem.  `None` (the
    /// default) keeps the hot path to a single branch per access.
    session: Option<Box<SessionRecorder>>,
    /// Exact per-granule access/miss tally (the accuracy harness's ground truth).
    /// `None` (the default) keeps the hot path to a single branch per access.
    ground_truth: Option<Box<GroundTruthTally>>,
    /// Sampled line-utilization tally: residencies are opened only for fills the IBS
    /// unit sampled (what a real profiler could afford), while the exact tally inside
    /// `ground_truth` counts every fill.  `None` by default.
    utilization: Option<Box<UtilizationTally>>,
    /// Reused per-access buffer of `(line, granule_mask, is_fetch)` chunk records for
    /// the utilization tallies; empty between accesses.
    util_chunks: Vec<(LineAddr, u8, bool)>,
}

impl Machine {
    /// Creates a machine with all clocks at zero and cold caches.
    pub fn new(config: MachineConfig) -> Self {
        let cores = config.hierarchy.cores;
        Machine {
            hierarchy: CacheHierarchy::new(config.hierarchy),
            symbols: SymbolTable::new(),
            ibs: IbsUnit::new(cores),
            watchpoints: WatchpointUnit::new(),
            clocks: vec![0; cores],
            fn_counters: Vec::new(),
            unknown_counters: FunctionCounters::default(),
            run_outcomes: Vec::new(),
            profiling_cycles: vec![0; cores],
            session: None,
            ground_truth: None,
            utilization: None,
            util_chunks: Vec::new(),
            config,
        }
    }

    /// Turns on exact ground-truth tallying: from now on every memory operation is
    /// counted (per 8-byte granule) with the same worst-line outcome IBS would report
    /// for it.  Used by the accuracy harness; idempotent.
    pub fn start_ground_truth(&mut self) {
        if self.ground_truth.is_none() {
            self.ground_truth = Some(Box::new(GroundTruthTally::new()));
        }
    }

    /// True if ground-truth tallying is active.
    pub fn ground_truth_active(&self) -> bool {
        self.ground_truth.is_some()
    }

    /// Detaches and returns the ground-truth tally (`None` if tallying was never
    /// enabled).  Tallying stops.  The embedded utilization tally is finalized (open
    /// line residencies are flushed) so its counters are consistent.
    pub fn take_ground_truth(&mut self) -> Option<GroundTruthTally> {
        self.ground_truth.take().map(|mut b| {
            b.utilization.finalize();
            *b
        })
    }

    /// Turns on the *sampled* line-utilization tally: from now on a line residency is
    /// tracked whenever its fill coincided with an IBS sample (touches during tracked
    /// residencies are recorded exactly).  Requires IBS sampling to be enabled for
    /// anything to be counted; idempotent.
    pub fn start_utilization(&mut self) {
        if self.utilization.is_none() {
            self.utilization = Some(Box::new(UtilizationTally::new()));
        }
    }

    /// True if the sampled utilization tally is active.
    pub fn utilization_active(&self) -> bool {
        self.utilization.is_some()
    }

    /// Detaches and returns the sampled utilization tally, finalized (`None` if it was
    /// never enabled).  Tallying stops.
    pub fn take_utilization(&mut self) -> Option<UtilizationTally> {
        self.utilization.take().map(|mut b| {
            b.finalize();
            *b
        })
    }

    /// Turns on session-event recording (see [`crate::session`]).  To capture a
    /// replayable session this must be called before any accesses are issued — i.e.
    /// right after [`Machine::new`], before the kernel and workload are built — since
    /// replay reconstructs the machine's evolution from birth.
    pub fn start_session_recording(&mut self) {
        if self.session.is_none() {
            self.session = Some(Box::new(SessionRecorder::new()));
        }
    }

    /// True if session recording is active.
    pub fn session_recording(&self) -> bool {
        self.session.is_some()
    }

    /// Drains the recorded session events (empty if recording was never enabled).
    pub fn take_session_events(&mut self) -> Vec<SessionEvent> {
        self.session.as_mut().map(|s| s.take()).unwrap_or_default()
    }

    /// Marks a workload-round boundary in the session recording.  No-op when not
    /// recording, so drivers can call it unconditionally.
    #[inline]
    pub fn mark_session_round(&mut self) {
        if let Some(s) = self.session.as_mut() {
            s.push(SessionEvent::RoundEnd);
        }
    }

    /// Records an allocator address-set insertion.  Called by the kernel allocator;
    /// no-op when not recording.
    #[inline]
    pub fn record_session_alloc(
        &mut self,
        core: CoreId,
        type_id: u32,
        size: u64,
        addr: u64,
        cycle: u64,
        hookable: bool,
    ) {
        if let Some(s) = self.session.as_mut() {
            s.push(SessionEvent::Alloc {
                core: core as u32,
                type_id,
                size,
                addr,
                cycle,
                hookable,
            });
        }
    }

    /// Records an allocator address-set removal.  Called by the kernel allocator;
    /// no-op when not recording.
    #[inline]
    pub fn record_session_free(&mut self, core: CoreId, addr: u64, cycle: u64) {
        if let Some(s) = self.session.as_mut() {
            s.push(SessionEvent::Free {
                core: core as u32,
                addr,
                cycle,
            });
        }
    }

    /// The mutable counter slot for a function id (dense-array fast path).
    ///
    /// Ids must come from this machine's symbol table ([`Self::fn_id`]) or be
    /// [`FunctionId::UNKNOWN`]; interned ids are small sequential integers, which is
    /// what makes the dense array safe to size by id.
    #[inline]
    fn counters_mut(&mut self, ip: FunctionId) -> &mut FunctionCounters {
        if ip == FunctionId::UNKNOWN {
            return &mut self.unknown_counters;
        }
        let idx = ip.0 as usize;
        if idx >= self.fn_counters.len() {
            assert!(
                idx < self.symbols.len(),
                "FunctionId({idx}) was not interned by this machine's symbol table"
            );
            self.fn_counters
                .resize(idx + 1, FunctionCounters::default());
        }
        &mut self.fn_counters[idx]
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.clocks.len()
    }

    /// Interns a function name (convenience pass-through to the symbol table).
    pub fn fn_id(&mut self, name: &str) -> FunctionId {
        self.symbols.intern(name)
    }

    /// The current cycle count of a core.
    pub fn clock(&self, core: CoreId) -> u64 {
        self.clocks[core]
    }

    /// The largest core clock (the machine's notion of elapsed time).
    pub fn max_clock(&self) -> u64 {
        self.clocks.iter().copied().max().unwrap_or(0)
    }

    /// Elapsed simulated wall-clock seconds (max clock / frequency).
    pub fn elapsed_seconds(&self) -> f64 {
        self.max_clock() as f64 / self.config.cycles_per_second as f64
    }

    /// Cycles spent servicing profiling interrupts on a core.
    pub fn profiling_cycles(&self, core: CoreId) -> u64 {
        self.profiling_cycles[core]
    }

    /// Total profiling-interrupt cycles across all cores.
    pub fn total_profiling_cycles(&self) -> u64 {
        self.profiling_cycles.iter().sum()
    }

    /// Advances a core's clock by `cycles` of non-memory work, attributing the cycles to
    /// `ip` in the per-function counters.
    pub fn compute(&mut self, core: CoreId, ip: FunctionId, cycles: u64) {
        if let Some(s) = self.session.as_mut() {
            s.push(SessionEvent::Compute {
                core: core as u32,
                ip,
                cycles,
            });
        }
        self.clocks[core] += cycles;
        self.counters_mut(ip).cycles += cycles;
    }

    /// Performs a memory access of `len` bytes at `addr` on `core`, attributed to `ip`.
    ///
    /// Accesses spanning multiple cache lines are split; the returned outcome reports
    /// the *worst* (highest-latency) line but the clock is charged for all of them.
    pub fn access(
        &mut self,
        core: CoreId,
        ip: FunctionId,
        addr: u64,
        len: u64,
        kind: AccessKind,
    ) -> AccessOutcome {
        let ibs_on = self.ibs.config().enabled();
        let wp_armed = self.watchpoints.any_armed();
        self.access_inner(core, ip, addr, len, kind, ibs_on, wp_armed)
    }

    /// Performs a batch of memory accesses on `core`, all attributed to `ip`, returning
    /// one outcome per request (same order).
    ///
    /// Semantically identical to calling [`Self::access`] once per request, but the
    /// profiling-hardware checks ("is IBS enabled?", "is any watchpoint armed?") are
    /// hoisted out of the loop — neither can change mid-batch — and the outcomes land
    /// in a buffer reused across calls, so a batch performs no allocation in the steady
    /// state.  This is the API the workload request paths drive: a payload copy becomes
    /// one `access_run` instead of N individually-dispatched accesses.
    pub fn access_run(
        &mut self,
        core: CoreId,
        ip: FunctionId,
        reqs: &[AccessReq],
    ) -> &[AccessOutcome] {
        let ibs_on = self.ibs.config().enabled();
        let wp_armed = self.watchpoints.any_armed();
        let mut out = std::mem::take(&mut self.run_outcomes);
        out.clear();
        out.reserve(reqs.len());
        for r in reqs {
            out.push(self.access_inner(core, ip, r.addr, r.len, r.kind, ibs_on, wp_armed));
        }
        self.run_outcomes = out;
        &self.run_outcomes
    }

    #[allow(clippy::too_many_arguments)]
    fn access_inner(
        &mut self,
        core: CoreId,
        ip: FunctionId,
        addr: u64,
        len: u64,
        kind: AccessKind,
        ibs_on: bool,
        wp_armed: bool,
    ) -> AccessOutcome {
        assert!(len > 0, "zero-length access");
        if let Some(s) = self.session.as_mut() {
            s.push(SessionEvent::Access {
                core: core as u32,
                ip,
                addr,
                len,
                kind,
            });
        }
        let line_size = self.hierarchy.line_size() as u64;
        let mut offset = 0u64;
        let mut worst: Option<AccessOutcome> = None;
        let mut total_latency = 0u64;
        let tallying = self.ground_truth.is_some() || self.utilization.is_some();

        while offset < len {
            let a = addr + offset;
            let line_end = (a / line_size + 1) * line_size;
            let chunk = (line_end - a).min(len - offset);
            let outcome = self.hierarchy.access(core, a, kind);
            total_latency += outcome.latency;
            if tallying {
                // A chunk is a *fetch* when its own line missed the private caches
                // (filled from L3, a foreign cache or DRAM).
                self.util_chunks.push((
                    outcome.line,
                    granule_mask(a, chunk, line_size),
                    outcome.level.is_miss(),
                ));
            }
            let is_worse = worst.map(|w| outcome.latency > w.latency).unwrap_or(true);
            if is_worse {
                worst = Some(outcome);
            }
            offset += chunk;
        }
        let worst = worst.expect("at least one line accessed");

        if let Some(gt) = self.ground_truth.as_mut() {
            gt.record(addr, kind, worst.level, worst.latency);
        }
        let samples_before = self.ibs.samples_taken;

        // Charge the core and the function counters.
        let charged = total_latency + self.config.op_cost;
        self.clocks[core] += charged;
        let counters = self.counters_mut(ip);
        counters.cycles += charged;
        counters.accesses += 1;
        if worst.level != HitLevel::L1 {
            counters.l1_misses += 1;
        }
        if worst.level.is_miss() {
            counters.l2_misses += 1;
        }

        // Profiling hardware (skipped entirely when idle).
        if ibs_on || wp_armed {
            let cycle = self.clocks[core];
            let mut cost = 0;
            if ibs_on {
                cost += self
                    .ibs
                    .on_access(core, ip, addr, kind, worst.level, worst.latency, cycle);
            }
            if wp_armed {
                cost += self.watchpoints.on_access(core, ip, addr, len, kind, cycle);
            }
            if cost > 0 {
                self.clocks[core] += cost;
                self.profiling_cycles[core] += cost;
            }
        }

        if tallying {
            // `samples_taken` advanced iff IBS sampled this operation — that decides
            // which fills the *sampled* tally follows; the exact tally counts them all.
            let sampled = ibs_on && self.ibs.samples_taken > samples_before;
            if let Some(gt) = self.ground_truth.as_mut() {
                for &(line, mask, is_fetch) in &self.util_chunks {
                    gt.utilization
                        .record_chunk(core, line, mask, is_fetch, true);
                }
            }
            if let Some(ut) = self.utilization.as_mut() {
                for &(line, mask, is_fetch) in &self.util_chunks {
                    ut.record_chunk(core, line, mask, is_fetch, sampled);
                }
            }
            self.util_chunks.clear();
        }

        worst
    }

    /// Convenience wrapper: a read access.
    pub fn read(&mut self, core: CoreId, ip: FunctionId, addr: u64, len: u64) -> AccessOutcome {
        self.access(core, ip, addr, len, AccessKind::Read)
    }

    /// Convenience wrapper: a write access.
    pub fn write(&mut self, core: CoreId, ip: FunctionId, addr: u64, len: u64) -> AccessOutcome {
        self.access(core, ip, addr, len, AccessKind::Write)
    }

    /// Configures IBS sampling.
    pub fn configure_ibs(&mut self, config: IbsConfig) {
        self.ibs.configure(config);
    }

    /// Arms a watchpoint, charging the cross-core broadcast cost to `core`.
    pub fn arm_watchpoint(
        &mut self,
        core: CoreId,
        addr: u64,
        len: u64,
    ) -> Result<WatchpointId, WatchpointError> {
        let (id, cost) = self.watchpoints.arm(addr, len)?;
        self.clocks[core] += cost;
        self.profiling_cycles[core] += cost;
        Ok(id)
    }

    /// Charges the memory-subsystem reservation cost for profiling an object to `core`.
    pub fn charge_profiling_reservation(&mut self, core: CoreId) {
        let cost = self.watchpoints.charge_memory_reservation();
        self.clocks[core] += cost;
        self.profiling_cycles[core] += cost;
    }

    /// Disarms a watchpoint.
    pub fn disarm_watchpoint(&mut self, id: WatchpointId) {
        self.watchpoints.disarm(id);
    }

    /// The per-function counters (OProfile's raw material), as a map keyed by function
    /// id.  Functions with no recorded activity are omitted.  Built on demand — the hot
    /// path stores counters in a dense array, not a hash map.
    pub fn function_counters(&self) -> HashMap<FunctionId, FunctionCounters> {
        let mut map: HashMap<FunctionId, FunctionCounters> = self
            .fn_counters
            .iter()
            .enumerate()
            .filter(|(_, c)| **c != FunctionCounters::default())
            .map(|(i, c)| (FunctionId(i as u32), *c))
            .collect();
        if self.unknown_counters != FunctionCounters::default() {
            map.insert(FunctionId::UNKNOWN, self.unknown_counters);
        }
        map
    }

    /// Ground-truth count of misses of a given kind observed by the hierarchy.
    pub fn miss_kind_count(&self, kind: MissKind) -> u64 {
        self.hierarchy.stats.miss_kind(kind)
    }

    /// Resets statistics, clocks, counters and profiling costs, keeping the cache
    /// contents, interned symbols and armed watchpoints.
    pub fn reset_measurement(&mut self) {
        self.hierarchy.reset_stats();
        for c in &mut self.clocks {
            *c = 0;
        }
        for p in &mut self.profiling_cycles {
            *p = 0;
        }
        self.fn_counters.clear();
        self.unknown_counters = FunctionCounters::default();
        self.watchpoints.reset_overhead();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(MachineConfig::small_test())
    }

    #[test]
    fn access_advances_clock_by_latency_plus_op_cost() {
        let mut m = machine();
        let ip = m.fn_id("f");
        let before = m.clock(0);
        let out = m.read(0, ip, 0x1000, 8);
        assert_eq!(m.clock(0), before + out.latency + m.config().op_cost);
    }

    #[test]
    fn multi_line_access_touches_both_lines() {
        let mut m = machine();
        let ip = m.fn_id("memcpy");
        // 128-byte access spanning two 64-byte lines.
        m.read(0, ip, 0x1000, 128);
        // Both lines should now be resident.
        assert_eq!(m.read(0, ip, 0x1000, 8).level, HitLevel::L1);
        assert_eq!(m.read(0, ip, 0x1040, 8).level, HitLevel::L1);
    }

    #[test]
    fn straddling_access_hits_second_line() {
        let mut m = machine();
        let ip = m.fn_id("f");
        // Access that starts near the end of one line and spills into the next.
        m.read(0, ip, 0x1038, 16);
        assert_eq!(m.read(0, ip, 0x1040, 8).level, HitLevel::L1);
    }

    #[test]
    fn function_counters_accumulate() {
        let mut m = machine();
        let f = m.fn_id("udp_recvmsg");
        let g = m.fn_id("kfree");
        m.read(0, f, 0x1000, 8);
        m.read(0, f, 0x1000, 8);
        m.write(1, g, 0x2000, 8);
        let fc = m.function_counters();
        assert_eq!(fc[&f].accesses, 2);
        assert_eq!(fc[&g].accesses, 1);
        assert!(fc[&f].cycles > 0);
        // First access missed, second hit.
        assert_eq!(fc[&f].l2_misses, 1);
    }

    #[test]
    fn compute_charges_named_function() {
        let mut m = machine();
        let f = m.fn_id("do_work");
        m.compute(0, f, 500);
        assert_eq!(m.clock(0), 500);
        assert_eq!(m.function_counters()[&f].cycles, 500);
        assert_eq!(m.function_counters()[&f].accesses, 0);
    }

    #[test]
    fn ibs_sampling_adds_profiling_cycles() {
        let mut m = machine();
        let ip = m.fn_id("hot");
        m.configure_ibs(IbsConfig {
            policy: crate::ibs::SamplingPolicy::fixed(5),
            interrupt_cost: 2_000,
            seed: 1,
        });
        for i in 0..1_000u64 {
            m.read(0, ip, 0x1000 + (i % 16) * 64, 8);
        }
        assert!(m.ibs.samples_taken > 0);
        assert_eq!(m.profiling_cycles(0), m.ibs.samples_taken * 2_000);
    }

    #[test]
    fn watchpoint_arm_and_hit_charge_costs() {
        let mut m = machine();
        let ip = m.fn_id("tcp_write");
        let before = m.clock(0);
        let id = m.arm_watchpoint(0, 0x5000, 8).unwrap();
        assert!(m.clock(0) > before, "arming must charge the broadcast cost");
        m.write(1, ip, 0x5000, 4);
        assert_eq!(m.watchpoints.buffered(), 1);
        assert!(m.profiling_cycles(1) >= 1_000);
        m.disarm_watchpoint(id);
        m.write(1, ip, 0x5000, 4);
        assert_eq!(m.watchpoints.buffered(), 1, "no hit after disarm");
    }

    #[test]
    fn elapsed_seconds_uses_max_clock() {
        let mut m = machine();
        let ip = m.fn_id("f");
        m.compute(0, ip, 1_000_000);
        m.compute(1, ip, 2_000_000);
        let secs = m.elapsed_seconds();
        assert!((secs - 2e-3).abs() < 1e-9);
    }

    #[test]
    fn reset_measurement_clears_counters_but_keeps_cache() {
        let mut m = machine();
        let ip = m.fn_id("f");
        m.read(0, ip, 0x1000, 8);
        m.reset_measurement();
        assert_eq!(m.clock(0), 0);
        assert!(m.function_counters().is_empty());
        // Cache contents survive: immediate hit.
        assert_eq!(m.read(0, ip, 0x1000, 8).level, HitLevel::L1);
    }

    #[test]
    #[should_panic(expected = "zero-length")]
    fn zero_length_access_rejected() {
        let mut m = machine();
        let ip = m.fn_id("f");
        m.read(0, ip, 0x1000, 0);
    }

    #[test]
    #[should_panic(expected = "not interned")]
    fn non_interned_function_id_rejected() {
        let mut m = machine();
        m.compute(0, FunctionId(999), 1);
    }

    #[test]
    fn access_run_equivalent_to_sequential_accesses() {
        // Two identical machines with IBS sampling on and a watchpoint armed: a batch
        // must produce exactly the same outcomes, clocks, counters and profiling
        // charges as the per-access API.
        let build = || {
            let mut m = machine();
            m.configure_ibs(IbsConfig {
                policy: crate::ibs::SamplingPolicy::fixed(3),
                interrupt_cost: 500,
                seed: 11,
            });
            m.arm_watchpoint(0, 0x2000, 8).unwrap();
            m.start_ground_truth();
            m.start_utilization();
            m
        };
        let mut seq = build();
        let mut bat = build();
        let ip_seq = seq.fn_id("hot");
        let ip_bat = bat.fn_id("hot");

        let reqs: Vec<AccessReq> = (0..64u64)
            .map(|i| {
                let addr = 0x2000 + (i % 7) * 24;
                if i % 3 == 0 {
                    AccessReq::write(addr, 16)
                } else {
                    AccessReq::read(addr, 8)
                }
            })
            .collect();

        let seq_outcomes: Vec<AccessOutcome> = reqs
            .iter()
            .map(|r| seq.access(0, ip_seq, r.addr, r.len, r.kind))
            .collect();
        let bat_outcomes = bat.access_run(0, ip_bat, &reqs).to_vec();

        assert_eq!(seq_outcomes, bat_outcomes);
        assert_eq!(seq.clock(0), bat.clock(0));
        assert_eq!(seq.profiling_cycles(0), bat.profiling_cycles(0));
        assert_eq!(seq.function_counters(), bat.function_counters());
        assert_eq!(seq.watchpoints.buffered(), bat.watchpoints.buffered());
        assert_eq!(seq.ibs.samples_taken, bat.ibs.samples_taken);
        assert!(bat.watchpoints.buffered() > 0, "watchpoint must have fired");

        let gt_seq = seq.take_ground_truth().unwrap();
        let gt_bat = bat.take_ground_truth().unwrap();
        assert_eq!(gt_seq.total_accesses, gt_bat.total_accesses);
        assert_eq!(
            gt_seq.utilization.snapshot(),
            gt_bat.utilization.snapshot(),
            "exact utilization tallies must match between batched and sequential runs"
        );
        let ut_seq = seq.take_utilization().unwrap();
        let ut_bat = bat.take_utilization().unwrap();
        assert_eq!(ut_seq.snapshot(), ut_bat.snapshot());
        assert_eq!(ut_seq.total_fetches, ut_bat.total_fetches);
    }

    #[test]
    fn exact_utilization_tracks_touched_granules() {
        let mut m = machine();
        let ip = m.fn_id("f");
        m.start_ground_truth();
        // Cold fill touching granule 0, two more touches at granules 1 and 7, then
        // evict-and-refetch is approximated by a second pass after thrashing the set.
        m.read(0, ip, 0x1000, 8);
        m.read(0, ip, 0x1008, 8);
        m.read(0, ip, 0x1038, 8);
        let gt = m.take_ground_truth().unwrap();
        let snap = gt.utilization.snapshot();
        let (line, counts) = snap
            .iter()
            .find(|&&(l, _)| l == 0x1000 / 64)
            .copied()
            .unwrap();
        assert_eq!(line, 0x40);
        assert_eq!(counts.fetches, 1);
        assert_eq!(counts.refetches, 0);
        assert_eq!(counts.touched[0], 1);
        assert_eq!(counts.touched[1], 1);
        assert_eq!(counts.touched[7], 1);
        assert_eq!(counts.touched_slots(), 3);
    }

    #[test]
    fn exact_utilization_counts_refetch_after_eviction() {
        let mut m = machine();
        let ip = m.fn_id("f");
        m.start_ground_truth();
        m.read(0, ip, 0x1000, 8);
        // small_test L1: 2KB 2-way 16 sets, L2: 8KB 4-way 32 sets.  Walk enough
        // same-set lines to evict 0x1000 from both private levels (32KB stride-free
        // sweep exceeds L2 capacity).
        for i in 1..=512u64 {
            m.read(0, ip, 0x1000 + i * 64, 8);
        }
        m.read(0, ip, 0x1000, 8); // re-fetch of evicted-then-reused line
        let gt = m.take_ground_truth().unwrap();
        let counts = gt
            .utilization
            .snapshot()
            .iter()
            .find(|&&(l, _)| l == 0x40)
            .map(|&(_, c)| c)
            .unwrap();
        assert_eq!(counts.fetches, 2);
        assert_eq!(counts.refetches, 1);
        assert!(gt.utilization.total_refetches >= 1);
    }

    #[test]
    fn sampled_utilization_counts_only_sampled_fills() {
        let mut m = machine();
        let ip = m.fn_id("f");
        m.start_utilization();
        // IBS disabled: no fill is ever sampled, so nothing is counted.
        for i in 0..64u64 {
            m.read(0, ip, 0x1000 + i * 64, 8);
        }
        let ut = m.take_utilization().unwrap();
        assert!(ut.is_empty());
        assert_eq!(ut.total_fetches, 0);

        // With IBS on, sampled fills open residencies.
        m.configure_ibs(IbsConfig {
            policy: crate::ibs::SamplingPolicy::fixed(2),
            interrupt_cost: 0,
            seed: 7,
        });
        m.start_utilization();
        for i in 0..64u64 {
            m.read(1, ip, 0x4_0000 + i * 64, 8);
        }
        let ut = m.take_utilization().unwrap();
        assert!(ut.total_fetches > 0);
        assert!(ut.total_fetches <= 64);
    }

    #[test]
    fn access_run_reuses_outcome_buffer() {
        let mut m = machine();
        let ip = m.fn_id("f");
        let reqs = [AccessReq::read(0x1000, 8), AccessReq::write(0x1040, 8)];
        let first: Vec<AccessOutcome> = m.access_run(0, ip, &reqs).to_vec();
        assert_eq!(first.len(), 2);
        // Second run over the warmed lines: both hit L1.
        let second = m.access_run(0, ip, &reqs);
        assert_eq!(second.len(), 2);
        assert!(second.iter().all(|o| o.level == HitLevel::L1));
    }
}
