//! Hardware debug-register ("watchpoint") unit.
//!
//! x86 provides four debug registers, each able to watch up to eight contiguous bytes
//! and raise an interrupt on every load/store to the watched range (§5.3 of the thesis).
//! DProf uses them to record *object access histories*: every instruction that touches a
//! chosen offset of a chosen object between its allocation and its free.
//!
//! The expensive parts on real hardware are reproduced as explicit cycle charges:
//!
//! * each watchpoint hit costs an interrupt (~1,000 cycles in the thesis),
//! * arming watchpoints requires broadcasting to every core (~130,000 cycles),
//! * reserving an object for profiling with the memory subsystem costs additional
//!   communication (the remainder of the ~220,000-cycle per-object setup).
//!
//! These charges are what make the object-access-history overhead tables (6.7–6.10)
//! reproducible.

use crate::symbols::FunctionId;
use serde::{Deserialize, Serialize};
use sim_cache::{AccessKind, CoreId};

/// Maximum number of simultaneously armed watchpoints (x86 has 4 debug registers).
pub const MAX_WATCHPOINTS: usize = 4;

/// Maximum bytes a single watchpoint can cover.
pub const MAX_WATCH_LEN: u64 = 8;

/// Identifier of an armed watchpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WatchpointId(pub u8);

/// Cycle-cost model for the watchpoint machinery.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WatchpointCosts {
    /// Cycles per debug-register interrupt (thesis: ~1,000).
    pub interrupt: u64,
    /// Cycles to broadcast debug-register setup to all cores (thesis: ~130,000).
    pub setup_broadcast: u64,
    /// Cycles to reserve an object for profiling with the memory subsystem
    /// (the remainder of the thesis' ~220,000-cycle per-object setup).
    pub memory_reserve: u64,
}

impl Default for WatchpointCosts {
    fn default() -> Self {
        WatchpointCosts {
            interrupt: 1_000,
            setup_broadcast: 130_000,
            memory_reserve: 60_000,
        }
    }
}

/// An armed watchpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Watchpoint {
    /// Identifier (debug register number).
    pub id: WatchpointId,
    /// First watched byte address.
    pub addr: u64,
    /// Number of watched bytes (1..=8).
    pub len: u64,
}

impl Watchpoint {
    /// True if the access `[addr, addr+len)` overlaps the watched range.
    pub fn overlaps(&self, addr: u64, len: u64) -> bool {
        addr < self.addr + self.len && self.addr < addr + len
    }
}

/// A recorded hit on a watchpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchpointHit {
    /// Which watchpoint fired.
    pub wp: WatchpointId,
    /// The core that performed the access.
    pub core: CoreId,
    /// Instruction pointer responsible.
    pub ip: FunctionId,
    /// Byte address accessed.
    pub addr: u64,
    /// Load or store.
    pub kind: AccessKind,
    /// Core-local cycle count at the time of the access.
    pub cycle: u64,
}

/// Errors returned when arming a watchpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WatchpointError {
    /// All debug registers are in use.
    Exhausted,
    /// The requested length exceeds eight bytes.
    TooLong,
    /// The requested length is zero.
    Empty,
}

impl std::fmt::Display for WatchpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WatchpointError::Exhausted => write!(f, "all {MAX_WATCHPOINTS} debug registers in use"),
            WatchpointError::TooLong => {
                write!(f, "watchpoint length exceeds {MAX_WATCH_LEN} bytes")
            }
            WatchpointError::Empty => write!(f, "watchpoint length must be non-zero"),
        }
    }
}

impl std::error::Error for WatchpointError {}

/// Breakdown of cycles spent operating the watchpoint machinery, used for the
/// object-access-history overhead tables (6.7 and 6.9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WatchpointOverhead {
    /// Cycles spent in debug-register interrupts.
    pub interrupt_cycles: u64,
    /// Cycles spent reserving objects with the memory subsystem.
    pub memory_cycles: u64,
    /// Cycles spent broadcasting debug-register setup to all cores.
    pub communication_cycles: u64,
}

impl WatchpointOverhead {
    /// Total overhead cycles.
    pub fn total(&self) -> u64 {
        self.interrupt_cycles + self.memory_cycles + self.communication_cycles
    }

    /// Fraction of the total attributable to each component, as `(interrupt, memory,
    /// communication)`; all zeros when no overhead was incurred.
    pub fn breakdown(&self) -> (f64, f64, f64) {
        let t = self.total() as f64;
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.interrupt_cycles as f64 / t,
            self.memory_cycles as f64 / t,
            self.communication_cycles as f64 / t,
        )
    }
}

/// The machine-wide watchpoint unit.  Watchpoints are mirrored on every core, exactly as
/// DProf programs the debug registers of all CPUs so that any core's access to the
/// watched object is caught.
#[derive(Debug, Clone, Default)]
pub struct WatchpointUnit {
    costs: WatchpointCosts,
    slots: [Option<Watchpoint>; MAX_WATCHPOINTS],
    buffer: Vec<WatchpointHit>,
    /// Armed ranges `(start, end, id)` sorted by start address, rebuilt on arm/disarm.
    /// This is the access fast path: an empty cache means "nothing armed" without
    /// scanning the slots, and the sorted order lets the overlap scan stop early.
    armed_cache: Vec<(u64, u64, WatchpointId)>,
    /// Smallest watched address (meaningful only when `armed_cache` is non-empty).
    min_start: u64,
    /// One past the largest watched address (meaningful only when non-empty).
    max_end: u64,
    /// Accumulated overhead, never reset implicitly.
    pub overhead: WatchpointOverhead,
    /// Number of hits recorded over the unit's lifetime.
    pub hits_recorded: u64,
    /// Number of arm operations performed.
    pub arms: u64,
}

impl WatchpointUnit {
    /// Creates a unit with the default cost model.
    pub fn new() -> Self {
        Self::with_costs(WatchpointCosts::default())
    }

    /// Creates a unit with a custom cost model.
    pub fn with_costs(costs: WatchpointCosts) -> Self {
        WatchpointUnit {
            costs,
            slots: [None; MAX_WATCHPOINTS],
            buffer: Vec::new(),
            armed_cache: Vec::new(),
            min_start: 0,
            max_end: 0,
            overhead: WatchpointOverhead::default(),
            hits_recorded: 0,
            arms: 0,
        }
    }

    /// Rebuilds the sorted armed-range cache after an arm/disarm.
    fn rebuild_armed_cache(&mut self) {
        self.armed_cache.clear();
        self.min_start = u64::MAX;
        self.max_end = 0;
        for wp in self.slots.iter().flatten() {
            let end = wp.addr + wp.len;
            self.armed_cache.push((wp.addr, end, wp.id));
            self.min_start = self.min_start.min(wp.addr);
            self.max_end = self.max_end.max(end);
        }
        self.armed_cache.sort_by_key(|&(start, _, _)| start);
    }

    /// True if at least one watchpoint is armed.  O(1); callers batching accesses can
    /// hoist this check and skip [`Self::on_access`] entirely.
    #[inline]
    pub fn any_armed(&self) -> bool {
        !self.armed_cache.is_empty()
    }

    /// The cost model in effect.
    pub fn costs(&self) -> WatchpointCosts {
        self.costs
    }

    /// Number of free debug registers.
    pub fn free_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.is_none()).count()
    }

    /// Arms a watchpoint over `[addr, addr+len)`.  Returns the cycles to charge to the
    /// arming core (the cross-core broadcast) along with the id.
    pub fn arm(&mut self, addr: u64, len: u64) -> Result<(WatchpointId, u64), WatchpointError> {
        if len == 0 {
            return Err(WatchpointError::Empty);
        }
        if len > MAX_WATCH_LEN {
            return Err(WatchpointError::TooLong);
        }
        let slot = self
            .slots
            .iter()
            .position(|s| s.is_none())
            .ok_or(WatchpointError::Exhausted)?;
        let id = WatchpointId(slot as u8);
        self.slots[slot] = Some(Watchpoint { id, addr, len });
        self.arms += 1;
        self.overhead.communication_cycles += self.costs.setup_broadcast;
        self.rebuild_armed_cache();
        Ok((id, self.costs.setup_broadcast))
    }

    /// Charges the memory-subsystem reservation cost (called when DProf asks the
    /// allocator to hand it the next object of a type).  Returns the cycles charged.
    pub fn charge_memory_reservation(&mut self) -> u64 {
        self.overhead.memory_cycles += self.costs.memory_reserve;
        self.costs.memory_reserve
    }

    /// Disarms a watchpoint.  Disarming is local and cheap; no cost is charged.
    pub fn disarm(&mut self, id: WatchpointId) {
        if let Some(slot) = self.slots.get_mut(id.0 as usize) {
            *slot = None;
        }
        self.rebuild_armed_cache();
    }

    /// Disarms everything.
    pub fn disarm_all(&mut self) {
        self.slots = [None; MAX_WATCHPOINTS];
        self.rebuild_armed_cache();
    }

    /// Currently armed watchpoints.
    pub fn armed(&self) -> impl Iterator<Item = &Watchpoint> {
        self.slots.iter().flatten()
    }

    /// Notifies the unit of a memory access.  If it overlaps an armed watchpoint a hit
    /// is recorded and the interrupt cost returned (to be charged to the core).
    ///
    /// The common case — nothing armed, or the access outside the watched address
    /// band — is a cached-emptiness check plus one bounds compare; only accesses that
    /// could overlap walk the (sorted, start-ordered) range list, stopping at the first
    /// range beyond the access.
    pub fn on_access(
        &mut self,
        core: CoreId,
        ip: FunctionId,
        addr: u64,
        len: u64,
        kind: AccessKind,
        cycle: u64,
    ) -> u64 {
        if self.armed_cache.is_empty() {
            return 0;
        }
        let end = addr + len;
        if addr >= self.max_end || end <= self.min_start {
            return 0;
        }
        let mut charged = 0;
        for &(start, stop, id) in &self.armed_cache {
            if start >= end {
                break; // sorted by start: no later range can overlap
            }
            if addr < stop {
                self.buffer.push(WatchpointHit {
                    wp: id,
                    core,
                    ip,
                    addr,
                    kind,
                    cycle,
                });
                self.hits_recorded += 1;
                charged += self.costs.interrupt;
            }
        }
        self.overhead.interrupt_cycles += charged;
        charged
    }

    /// Drains all recorded hits.
    pub fn drain(&mut self) -> Vec<WatchpointHit> {
        std::mem::take(&mut self.buffer)
    }

    /// Number of buffered hits.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Resets the overhead accounting (armed watchpoints are untouched).
    pub fn reset_overhead(&mut self) {
        self.overhead = WatchpointOverhead::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const IP: FunctionId = FunctionId(3);

    #[test]
    fn arm_up_to_four() {
        let mut u = WatchpointUnit::new();
        for i in 0..MAX_WATCHPOINTS {
            assert!(u.arm(0x1000 + i as u64 * 8, 8).is_ok());
        }
        assert_eq!(u.free_slots(), 0);
        assert_eq!(u.arm(0x9000, 8), Err(WatchpointError::Exhausted));
    }

    #[test]
    fn arm_rejects_bad_lengths() {
        let mut u = WatchpointUnit::new();
        assert_eq!(u.arm(0x1000, 0), Err(WatchpointError::Empty));
        assert_eq!(u.arm(0x1000, 9), Err(WatchpointError::TooLong));
    }

    #[test]
    fn hit_recorded_on_overlap_only() {
        let mut u = WatchpointUnit::new();
        let (id, _) = u.arm(0x1000, 4).unwrap();
        // Non-overlapping access.
        assert_eq!(u.on_access(0, IP, 0x1004, 4, AccessKind::Read, 10), 0);
        // Overlapping access (straddles the start).
        let cost = u.on_access(1, IP, 0x0ffe, 4, AccessKind::Write, 20);
        assert_eq!(cost, WatchpointCosts::default().interrupt);
        let hits = u.drain();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].wp, id);
        assert_eq!(hits[0].core, 1);
        assert_eq!(hits[0].kind, AccessKind::Write);
    }

    #[test]
    fn disarm_frees_slot_and_stops_hits() {
        let mut u = WatchpointUnit::new();
        let (id, _) = u.arm(0x2000, 8).unwrap();
        u.disarm(id);
        assert_eq!(u.free_slots(), MAX_WATCHPOINTS);
        assert_eq!(u.on_access(0, IP, 0x2000, 8, AccessKind::Read, 0), 0);
        assert_eq!(u.buffered(), 0);
    }

    #[test]
    fn overhead_breakdown_sums_to_one() {
        let mut u = WatchpointUnit::new();
        u.arm(0x3000, 8).unwrap();
        u.charge_memory_reservation();
        u.on_access(0, IP, 0x3000, 4, AccessKind::Read, 0);
        let (i, m, c) = u.overhead.breakdown();
        assert!((i + m + c - 1.0).abs() < 1e-9);
        assert!(u.overhead.total() > 0);
    }

    #[test]
    fn cached_scan_agrees_with_overlap_predicate() {
        // The fast-path range walk must fire exactly where Watchpoint::overlaps says,
        // for every access, so the two formulations cannot drift apart.
        let mut u = WatchpointUnit::new();
        u.arm(0x100, 8).unwrap();
        u.arm(0x140, 4).unwrap();
        u.arm(0x90, 2).unwrap();
        for addr in (0x80..0x160u64).step_by(3) {
            for len in [1u64, 4, 8, 16] {
                let expected = u.armed().filter(|wp| wp.overlaps(addr, len)).count() as u64
                    * u.costs().interrupt;
                let charged = u.on_access(0, IP, addr, len, AccessKind::Read, 0);
                assert_eq!(
                    charged, expected,
                    "disagreement at addr {addr:#x} len {len}"
                );
            }
        }
    }

    #[test]
    fn any_armed_tracks_arm_and_disarm() {
        let mut u = WatchpointUnit::new();
        assert!(!u.any_armed());
        let (id, _) = u.arm(0x1000, 8).unwrap();
        assert!(u.any_armed());
        u.disarm(id);
        assert!(!u.any_armed());
        u.arm(0x1000, 8).unwrap();
        u.arm(0x9000, 8).unwrap();
        u.disarm_all();
        assert!(!u.any_armed());
    }

    #[test]
    fn out_of_band_accesses_take_the_bounds_fast_path() {
        let mut u = WatchpointUnit::new();
        u.arm(0x5000, 8).unwrap();
        u.arm(0x6000, 4).unwrap();
        // Below the band, above the band, and inside the band but between ranges.
        assert_eq!(u.on_access(0, IP, 0x100, 8, AccessKind::Read, 0), 0);
        assert_eq!(u.on_access(0, IP, 0x7000, 8, AccessKind::Read, 0), 0);
        assert_eq!(u.on_access(0, IP, 0x5800, 8, AccessKind::Read, 0), 0);
        assert_eq!(u.buffered(), 0);
        // Straddling the band edge still hits.
        assert!(u.on_access(0, IP, 0x4ffc, 8, AccessKind::Write, 0) > 0);
        assert_eq!(u.buffered(), 1);
    }

    #[test]
    fn two_watchpoints_same_object_both_fire() {
        // Pairwise sampling arms two offsets of the same object; an access spanning
        // both must produce two hits.
        let mut u = WatchpointUnit::new();
        u.arm(0x4000, 4).unwrap();
        u.arm(0x4004, 4).unwrap();
        let cost = u.on_access(0, IP, 0x4000, 8, AccessKind::Write, 5);
        assert_eq!(cost, 2 * WatchpointCosts::default().interrupt);
        assert_eq!(u.drain().len(), 2);
    }
}
