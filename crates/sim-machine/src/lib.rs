//! # sim-machine
//!
//! A cycle-approximate multicore machine model on top of [`sim_cache`], providing the
//! performance-monitoring hardware that DProf depends on:
//!
//! * per-core cycle clocks and a simple timing model (memory latency + per-op cost),
//! * a [`SymbolTable`] so workloads can attribute every access to a named kernel
//!   function (the simulation's stand-in for instruction pointers),
//! * an AMD-IBS-like statistical sampling unit ([`IbsUnit`]) that reports instruction
//!   pointer, data address, cache level and latency for randomly tagged operations,
//! * an x86-debug-register-like watchpoint unit ([`WatchpointUnit`]) with four 8-byte
//!   watchpoints and explicit interrupt / cross-core setup costs,
//! * always-on per-function counters that the OProfile baseline consumes.
//!
//! Profiling overhead is *charged to the core clocks*, which is what makes the paper's
//! overhead experiments (Figure 6-2, Tables 6.7–6.10) reproducible: enabling heavier
//! sampling slows the simulated workload down exactly as it slows the real one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ibs;
pub mod machine;
pub mod session;
pub mod symbols;
pub mod watchpoint;

pub use ibs::{IbsConfig, IbsRecord, IbsUnit, SamplingPolicy};
pub use machine::{AccessReq, FunctionCounters, Machine, MachineConfig};
pub use session::{SessionEvent, SessionRecorder};
pub use symbols::{FunctionId, SymbolTable};
pub use watchpoint::{
    Watchpoint, WatchpointCosts, WatchpointError, WatchpointHit, WatchpointId, WatchpointOverhead,
    WatchpointUnit, MAX_WATCHPOINTS, MAX_WATCH_LEN,
};

pub use sim_cache::{AccessKind, AccessOutcome, CoreId, HitLevel, MissKind};
