//! Session event recording: the raw material of the `dprof-trace` record/replay
//! subsystem.
//!
//! A *session event* is one externally-driven state change of the simulated machine or
//! of the allocator's address-set bookkeeping.  Recording every such event from machine
//! birth onward captures everything a later replay needs to reproduce the machine's
//! evolution exactly — cache contents, per-core clocks, IBS samples, watchpoint hits and
//! the allocator's address set all follow deterministically from the event stream — so a
//! replayed profiling session produces a report byte-identical to the live run's.
//!
//! The event kinds:
//!
//! * [`SessionEvent::Access`] — one [`crate::Machine::access`]-level memory operation
//!   (`core`, attributed `ip`, byte address, length, read/write).  Line splitting is
//!   *not* applied here: replay re-issues the access through the machine, which splits
//!   it exactly as the live run did.
//! * [`SessionEvent::Compute`] — non-memory work advancing a core's clock.
//! * [`SessionEvent::Alloc`] / [`SessionEvent::Free`] — allocator bookkeeping: an
//!   object's birth/death with its live-recorded cycle stamps.  The allocator's own
//!   memory traffic is *not* folded in (it already appears as `Access` events); these
//!   events carry only the address-set mutation, plus whether the allocation is
//!   eligible for the DProf profile hook (`hookable`), so replay can re-run the
//!   watchpoint-arming decision at exactly the same point in the stream.
//! * [`SessionEvent::RoundEnd`] — a workload-round boundary.  The driver marks one
//!   after setup and one after every workload step, which is what lets replay feed the
//!   profiler one round at a time through the same `step`-closure interface the live
//!   workloads use.
//!
//! The profiler's own actions (IBS configuration, watchpoint arming costs) are
//! deliberately *not* recorded: replay runs the real profiler, which re-makes the same
//! deterministic decisions at the same stream positions.

use crate::symbols::FunctionId;
use sim_cache::AccessKind;

/// One recorded machine/allocator event.  See the module docs for semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEvent {
    /// A memory access as issued to [`crate::Machine::access`] / `access_run`.
    Access {
        /// Issuing core.
        core: u32,
        /// Function the access is attributed to.
        ip: FunctionId,
        /// First byte address.
        addr: u64,
        /// Length in bytes (may span cache lines).
        len: u64,
        /// Load or store.
        kind: AccessKind,
    },
    /// Non-memory work advancing a core's clock.
    Compute {
        /// Core performing the work.
        core: u32,
        /// Function the cycles are attributed to.
        ip: FunctionId,
        /// Cycles of work.
        cycles: u64,
    },
    /// An allocator address-set insertion (object allocated).
    Alloc {
        /// Allocating core.
        core: u32,
        /// Raw type id (`sim_kernel::TypeId.0`) of the object.
        type_id: u32,
        /// Object size in bytes.
        size: u64,
        /// Base address.
        addr: u64,
        /// Core-local cycle count recorded at allocation time.
        cycle: u64,
        /// True for ordinary pool allocations (eligible for the DProf profile hook);
        /// false for allocator-internal bookkeeping objects (slab descriptors,
        /// array-caches), which never trigger the hook in a live run.
        hookable: bool,
    },
    /// An allocator address-set removal (object freed).
    Free {
        /// Freeing core.
        core: u32,
        /// Base address of the freed object.
        addr: u64,
        /// Core-local cycle count recorded at free time.
        cycle: u64,
    },
    /// A workload-round boundary marker.
    RoundEnd,
}

impl SessionEvent {
    /// Counterfactual dispatch: for an [`SessionEvent::Access`], a copy with the
    /// issuing core, address and length replaced — the primitive a what-if replay
    /// layer rewrites recorded traffic with before re-issuing it to the machine.
    /// Non-access events are returned unchanged.
    #[must_use]
    pub fn with_access_target(self, core: u32, addr: u64, len: u64) -> SessionEvent {
        match self {
            SessionEvent::Access { ip, kind, .. } => SessionEvent::Access {
                core,
                ip,
                addr,
                len,
                kind,
            },
            other => other,
        }
    }
}

/// The in-memory session event buffer, owned by [`crate::Machine`] while recording.
#[derive(Debug, Clone, Default)]
pub struct SessionRecorder {
    events: Vec<SessionEvent>,
}

impl SessionRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    #[inline]
    pub fn push(&mut self, event: SessionEvent) {
        self.events.push(event);
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Takes the buffered events, leaving the recorder empty (and still recording).
    pub fn take(&mut self) -> Vec<SessionEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_buffers_and_drains() {
        let mut r = SessionRecorder::new();
        assert!(r.is_empty());
        r.push(SessionEvent::RoundEnd);
        r.push(SessionEvent::Compute {
            core: 1,
            ip: FunctionId(2),
            cycles: 30,
        });
        assert_eq!(r.len(), 2);
        let events = r.take();
        assert_eq!(events.len(), 2);
        assert!(r.is_empty());
        assert_eq!(events[0], SessionEvent::RoundEnd);
    }
}
