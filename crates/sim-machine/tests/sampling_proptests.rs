//! Property tests of the sampling policies' record/replay contract:
//!
//! * a `fixed:<rate>` policy with the same seed produces an *identical* sample
//!   stream when the same access stream is fed twice (record vs replay),
//! * an `adaptive:<budget>` policy never takes more than `budget` samples, no
//!   matter the stream, and its decisions are equally a pure function of the
//!   stream, and
//! * re-configuring a unit fully resets its controller state, so a unit that
//!   already sampled one phase replays a second phase exactly like a fresh unit
//!   (the profiler reconfigures the live unit between phases; replay starts from
//!   a fresh machine — both must see the same samples).

use proptest::prelude::*;
use sim_machine::{AccessKind, HitLevel};
use sim_machine::{FunctionId, IbsConfig, IbsRecord, IbsUnit, SamplingPolicy};

/// Strategy producing a random access stream over `cores` cores.
fn stream_strategy(cores: usize) -> impl Strategy<Value = Vec<(usize, u64, bool)>> {
    proptest::collection::vec((0..cores, 0u64..0x10_000u64, any::<bool>()), 1..2_000usize)
}

/// Feeds a stream through a unit configured with `config`, returning the samples.
fn drive(config: IbsConfig, cores: usize, stream: &[(usize, u64, bool)]) -> Vec<IbsRecord> {
    let mut unit = IbsUnit::new(cores);
    unit.configure(config);
    feed(&mut unit, stream);
    unit.drain()
}

fn feed(unit: &mut IbsUnit, stream: &[(usize, u64, bool)]) {
    for (i, &(core, addr, write)) in stream.iter().enumerate() {
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        // Level/latency are payload, not controller inputs; vary them anyway so the
        // identity check is meaningful.
        let level = if addr % 5 == 0 {
            HitLevel::Dram
        } else {
            HitLevel::L1
        };
        unit.on_access(core, FunctionId(0), addr, kind, level, addr % 7, i as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fixed-rate sampling is deterministic: same seed + same stream = the same
    /// samples, record or replay.
    #[test]
    fn fixed_rate_sample_stream_is_replay_stable(
        stream in stream_strategy(4),
        interval in 1u64..300,
        seed in 0u64..1_000,
    ) {
        let config = IbsConfig {
            policy: SamplingPolicy::Fixed { interval_ops: interval },
            interrupt_cost: 0,
            seed,
        };
        let first = drive(config, 4, &stream);
        let second = drive(config, 4, &stream);
        prop_assert_eq!(first, second);
    }

    /// An adaptive budget is never exceeded, and the stream is replay-stable.
    #[test]
    fn adaptive_budget_holds_and_is_replay_stable(
        stream in stream_strategy(4),
        budget in 1u64..2_000,
        seed in 0u64..1_000,
    ) {
        let config = IbsConfig {
            policy: SamplingPolicy::Adaptive { budget },
            interrupt_cost: 0,
            seed,
        };
        let first = drive(config, 4, &stream);
        prop_assert!(
            (first.len() as u64) <= budget,
            "budget {} exceeded: {} samples", budget, first.len()
        );
        let second = drive(config, 4, &stream);
        prop_assert_eq!(first, second);
    }

    /// Reconfiguring fully resets the controller: a unit that already ran an
    /// arbitrary first phase samples a second phase exactly like a fresh unit.
    #[test]
    fn reconfigure_resets_all_controller_state(
        phase1 in stream_strategy(2),
        phase2 in stream_strategy(2),
        budget in 1u64..500,
    ) {
        let config = IbsConfig {
            policy: SamplingPolicy::Adaptive { budget },
            interrupt_cost: 0,
            seed: 0x5eed,
        };
        // Used unit: phase 1 under a different policy, then reconfigure.
        let mut used = IbsUnit::new(2);
        used.configure(IbsConfig {
            policy: SamplingPolicy::Fixed { interval_ops: 17 },
            interrupt_cost: 0,
            seed: 1,
        });
        feed(&mut used, &phase1);
        used.drain();
        used.configure(config);
        feed(&mut used, &phase2);

        let fresh = drive(config, 2, &phase2);
        prop_assert_eq!(used.drain(), fresh);
        prop_assert!(used.phase_samples() <= budget);
    }
}
