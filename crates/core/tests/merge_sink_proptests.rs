//! Property tests for the [`MergeSink`] contract that the serve collector leans
//! on:
//!
//! 1. **Order-insensitivity** — absorbing the same shard set in any arrival
//!    order yields a bit-identical `MergedReport` (floats included), equal to
//!    the one-shot [`merge_shards`] over the canonically sorted set.
//! 2. **Compaction exactness** — a bounded sink (small compact threshold) keeps
//!    its resident shard count under the threshold while preserving every exact
//!    count (pooled miss samples per type, per-class miss samples, requests)
//!    against the unbounded merge of the same set.

use dprof_core::merge::{
    merge_shards, MergeSink, ProfileShard, ShardMeta, ShardMissRow, ShardProfileRow,
    ShardUtilization, ShardUtilizationOrigin, ShardUtilizationRow, ShardWorkingSet, StreamingMerge,
};
use proptest::prelude::*;

/// A small fixed name pool so shards overlap on some types and not others.
const NAMES: [&str; 5] = ["skbuff", "ring_desc", "scan_buffer", "hash_bucket", "slab"];

/// One generated shard: a subset of the name pool with per-type miss counts.
/// `ordinal` is assigned by the caller (arrival-unique shard ids, like the
/// producer-assigned ids the serve protocol requires).
fn shard_from(ordinal: u64, seed: u64, rows: Vec<(usize, u64, bool)>) -> ProfileShard {
    let mut picked: Vec<(String, u64, bool)> = Vec::new();
    for (name_idx, misses, bounce) in rows {
        let name = NAMES[name_idx];
        if picked.iter().any(|(n, _, _)| n == name) {
            continue; // one row per type, like a real profile
        }
        picked.push((name.to_string(), misses, bounce));
    }
    let total: u64 = picked.iter().map(|(_, m, _)| *m).sum::<u64>().max(1);
    let profile: Vec<ShardProfileRow> = picked
        .iter()
        .map(|(name, misses, bounce)| ShardProfileRow {
            name: name.clone(),
            description: format!("{name} (generated)"),
            working_set_bytes: 64.0 + *misses as f64,
            pct_of_l1_misses: 100.0 * *misses as f64 / total as f64,
            pct_of_miss_cycles: 100.0 * *misses as f64 / total as f64,
            bounce: *bounce,
            samples: misses * 2 + 1,
            l1_miss_samples: *misses,
            threads_seen: 1,
        })
        .collect();
    let classification: Vec<ShardMissRow> = picked
        .iter()
        .map(|(name, misses, bounce)| ShardMissRow {
            name: name.clone(),
            miss_samples: *misses,
            invalidation: if *bounce { 0.8 } else { 0.1 },
            conflict: 0.1,
            capacity: if *bounce { 0.1 } else { 0.8 },
        })
        .collect();
    let utilization_rows: Vec<ShardUtilizationRow> = picked
        .iter()
        .map(|(name, misses, bounce)| {
            let fetched = misses * 8;
            let touched = misses * if *bounce { 2 } else { 5 };
            ShardUtilizationRow {
                name: name.clone(),
                description: format!("{name} (generated)"),
                slots_fetched: fetched,
                slots_touched: touched,
                refetch_slots: misses / 2,
                wasted_bytes_per_sec: *misses as f64 * 3.0,
                origins: vec![ShardUtilizationOrigin {
                    origin: format!("cpu{}", seed % 4),
                    slots_fetched: fetched,
                    slots_touched: touched,
                }],
            }
        })
        .collect();
    let resolved_fetched: u64 = utilization_rows.iter().map(|r| r.slots_fetched).sum();
    let resolved_touched: u64 = utilization_rows.iter().map(|r| r.slots_touched).sum();
    ProfileShard {
        ordinal,
        weight: total as f64,
        meta: ShardMeta {
            thread: ordinal as usize,
            seed,
            requests: 100 + total,
            rps: 1000.0 + seed as f64,
            profiling_fraction: 0.02,
            samples: total * 2,
            total_cycles: 10_000 + total,
        },
        data_profile: profile,
        miss_classification: classification,
        utilization: ShardUtilization {
            rows: utilization_rows,
            total_fetches: total,
            total_refetches: total / 3,
            resolved_slots_fetched: resolved_fetched,
            resolved_slots_touched: resolved_touched,
        },
        working_set: ShardWorkingSet {
            thread_count: 1,
            ..ShardWorkingSet::default()
        },
        data_flows: Vec::new(),
    }
}

fn shard_set_strategy() -> impl Strategy<Value = Vec<ProfileShard>> {
    proptest::collection::vec(
        (
            0u64..1_000, // seed
            proptest::collection::vec((0usize..NAMES.len(), 0u64..500, any::<bool>()), 1..5),
        ),
        1..12,
    )
    .prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (seed, rows))| shard_from(i as u64 + 1, seed, rows))
            .collect()
    })
}

/// Deterministic permutation of `0..n` driven by a generated key (the vendored
/// proptest has no shuffle strategy; a keyed sort is just as adversarial).
fn permutation(n: usize, key: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&i| {
        (i as u64)
            .wrapping_mul(6_364_136_223_846_793_005)
            .rotate_left((key % 64) as u32)
            ^ key
    });
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Absorbing in permuted arrival order changes nothing: the sink's report is
    /// bit-identical to both the original-order sink and the one-shot
    /// `merge_shards` over the canonically sorted slice.
    #[test]
    fn streaming_merge_is_arrival_order_insensitive(
        shards in shard_set_strategy(),
        key in any::<u64>(),
    ) {
        let mut in_order = StreamingMerge::new();
        for s in &shards {
            in_order.absorb(s.clone());
        }
        let mut permuted = StreamingMerge::new();
        for &i in &permutation(shards.len(), key) {
            permuted.absorb(shards[i].clone());
        }
        prop_assert_eq!(in_order.absorbed(), shards.len() as u64);
        let report = in_order.finish();
        prop_assert_eq!(&report, &permuted.finish());

        // ... and equal to the one-shot merge over the canonically sorted set.
        let mut sorted: Vec<&ProfileShard> = shards.iter().collect();
        sorted.sort_by_key(|s| s.sort_key());
        prop_assert_eq!(&report, &merge_shards(&sorted));
    }

    /// A bounded sink keeps `shard_count() < threshold` after every absorb and
    /// preserves the exact pooled counts of the unbounded merge: per-type L1
    /// miss samples, per-class miss samples, total requests, pooled weight.
    #[test]
    fn compacting_sink_preserves_exact_counts(
        shards in shard_set_strategy(),
        threshold in 2usize..6,
    ) {
        let mut bounded = StreamingMerge::with_compact_threshold(threshold);
        for s in &shards {
            bounded.absorb(s.clone());
            // absorb() compacts at the threshold, so residency stays below it.
            prop_assert!(bounded.shard_count() < threshold.max(2) + 1);
        }
        prop_assert_eq!(bounded.absorbed(), shards.len() as u64);

        let mut unbounded = StreamingMerge::new();
        for s in &shards {
            unbounded.absorb(s.clone());
        }
        let compacted = bounded.finish();
        let exact = unbounded.finish();

        prop_assert_eq!(compacted.total_requests, exact.total_requests);
        prop_assert_eq!(compacted.total_cycles, exact.total_cycles);
        prop_assert!((compacted.pooled_weight - exact.pooled_weight).abs() < 1e-6);

        prop_assert_eq!(compacted.data_profile.len(), exact.data_profile.len());
        for (c, e) in compacted.data_profile.iter().zip(&exact.data_profile) {
            prop_assert_eq!(&c.name, &e.name);
            prop_assert_eq!(c.l1_miss_samples, e.l1_miss_samples);
            prop_assert_eq!(c.samples, e.samples);
            // Weighted-mean percentages are reconstructed at rounding accuracy.
            prop_assert!((c.pct_of_l1_misses - e.pct_of_l1_misses).abs() < 1e-6,
                "{}: {} vs {}", c.name, c.pct_of_l1_misses, e.pct_of_l1_misses);
        }

        prop_assert_eq!(compacted.miss_classification.len(), exact.miss_classification.len());
        for (c, e) in compacted.miss_classification.iter().zip(&exact.miss_classification) {
            prop_assert_eq!(&c.name, &e.name);
            prop_assert_eq!(c.miss_samples, e.miss_samples);
        }

        // Utilization counts pool exactly and rates are sums, so compaction
        // preserves the whole merged view bit-for-bit.
        prop_assert_eq!(&compacted.utilization, &exact.utilization);
    }
}
