//! Property tests for the report-diff engine's algebraic invariants:
//!
//! 1. `diff(a, a)` is empty/neutral (verdict `Unchanged`, every delta zero),
//! 2. swapping the arguments negates every numeric delta and mirrors every
//!    before/after pair,
//! 3. the verdict and the delta rows are stable under arbitrary reordering of either
//!    input's type rows (the diff is a function of report *contents*, not row order).

use dprof_core::report::diff::{diff, ReportSummary, TypeSummary, Verdict};
use proptest::prelude::*;

/// A small fixed name pool, so generated report pairs overlap on some types and
/// differ on others.
const NAMES: [&str; 6] = [
    "skbuff",
    "size-1024",
    "ring_desc",
    "tcp-sock",
    "hash_bucket",
    "route_cache",
];

const DOMINANTS: [Option<&str>; 4] = [
    None,
    Some("invalidation"),
    Some("conflict"),
    Some("capacity"),
];

/// Generates one report summary from packed integer tuples (the vendored proptest
/// supports ranges, tuples and `collection::vec`).
fn summary_strategy() -> impl Strategy<Value = ReportSummary> {
    proptest::collection::vec(
        (
            (0usize..NAMES.len(), 0u32..10_000, 0u64..100_000),
            (0u32..1_000_000, 0u64..5_000, 0usize..DOMINANTS.len()),
            (0u32..1_000, any::<bool>()),
        ),
        0..8,
    )
    .prop_map(|rows| {
        let mut types: Vec<TypeSummary> = Vec::new();
        for ((name_idx, pct_centi, misses), (ws_bytes, crossings, dom_idx), (mix, bounce)) in rows {
            let name = NAMES[name_idx];
            if types.iter().any(|t: &TypeSummary| t.name == name) {
                continue; // one row per type, like a real report
            }
            // Split `mix` into three fractions summing to <= 1.
            let invalidation = f64::from(mix % 10) / 10.0;
            let conflict = f64::from((mix / 10) % 10) / 10.0 * (1.0 - invalidation);
            let capacity = (1.0 - invalidation - conflict).max(0.0);
            types.push(TypeSummary {
                name: name.to_string(),
                pct_of_l1_misses: f64::from(pct_centi) / 100.0,
                miss_samples: misses,
                bounce,
                working_set_bytes: f64::from(ws_bytes),
                invalidation,
                conflict,
                capacity,
                dominant_miss: DOMINANTS[dom_idx].map(|s| s.to_string()),
                core_crossings: crossings,
                utilization_pct: f64::from(100 - mix % 100),
                wasted_bytes: u64::from(ws_bytes) * 8,
                wasted_bytes_per_sec: f64::from(ws_bytes),
                refetch_ratio: f64::from(mix % 10) / 10.0,
            });
        }
        ReportSummary { types, rps: 0.0 }
    })
}

/// A deterministic shuffle driven by `key` (the vendored proptest has no
/// `Just`/`prop_shuffle`, so reorderings are derived from an extra generated integer).
fn reorder(summary: &ReportSummary, key: u64) -> ReportSummary {
    let mut types = summary.types.clone();
    if types.is_empty() {
        return summary.clone();
    }
    let rot = (key as usize) % types.len();
    types.rotate_left(rot);
    if key.is_multiple_of(2) {
        types.reverse();
    }
    ReportSummary { types, rps: 0.0 }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn self_diff_is_neutral(a in summary_strategy(), key in 0u64..1000) {
        let d = diff(&a, &a, None);
        prop_assert_eq!(d.verdict, Verdict::Unchanged);
        prop_assert!(d.is_neutral(), "diff(a, a) must be neutral: {:?}", d);
        // Even against a reordered copy of itself: same contents, same (neutral) diff.
        let d2 = diff(&a, &reorder(&a, key), None);
        prop_assert!(d2.is_neutral());
    }

    #[test]
    fn swapping_arguments_negates_every_delta(
        a in summary_strategy(),
        b in summary_strategy(),
    ) {
        let ab = diff(&a, &b, None);
        let ba = diff(&b, &a, None);
        prop_assert_eq!(ab.types.len(), ba.types.len());
        for t in &ab.types {
            let r = ba.for_type(&t.name).expect("union is symmetric");
            prop_assert!((t.delta_pct + r.delta_pct).abs() < 1e-9);
            prop_assert_eq!(t.delta_miss_samples, -r.delta_miss_samples);
            prop_assert!((t.delta_invalidation + r.delta_invalidation).abs() < 1e-9);
            prop_assert!((t.delta_conflict + r.delta_conflict).abs() < 1e-9);
            prop_assert!((t.delta_capacity + r.delta_capacity).abs() < 1e-9);
            prop_assert!((t.delta_working_set_bytes + r.delta_working_set_bytes).abs() < 1e-9);
            prop_assert_eq!(t.delta_core_crossings, -r.delta_core_crossings);
            // Before/after pairs mirror.
            prop_assert_eq!(t.in_a, r.in_b);
            prop_assert_eq!(t.in_b, r.in_a);
            prop_assert!((t.pct_a - r.pct_b).abs() < 1e-12);
            prop_assert!((t.pct_b - r.pct_a).abs() < 1e-12);
            prop_assert_eq!(&t.dominant_a, &r.dominant_b);
            prop_assert_eq!(&t.dominant_b, &r.dominant_a);
            prop_assert_eq!(t.ws_rank_a, r.ws_rank_b);
            prop_assert_eq!(t.ws_rank_b, r.ws_rank_a);
            prop_assert_eq!(t.bounce_a, r.bounce_b);
            prop_assert_eq!(t.bounce_b, r.bounce_a);
            prop_assert_eq!(t.delta_wasted_bytes, -r.delta_wasted_bytes);
            prop_assert!((t.utilization_pct_a - r.utilization_pct_b).abs() < 1e-12);
            prop_assert!((t.utilization_pct_b - r.utilization_pct_a).abs() < 1e-12);
            prop_assert_eq!(t.wasted_bytes_a, r.wasted_bytes_b);
        }
    }

    #[test]
    fn verdict_and_rows_are_stable_under_row_reordering(
        a in summary_strategy(),
        b in summary_strategy(),
        key_a in 0u64..1000,
        key_b in 0u64..1000,
    ) {
        let baseline = diff(&a, &b, None);
        let shuffled = diff(&reorder(&a, key_a), &reorder(&b, key_b), None);
        prop_assert_eq!(baseline.verdict, shuffled.verdict);
        prop_assert_eq!(&baseline.focus, &shuffled.focus);
        prop_assert_eq!(&baseline.moved_to, &shuffled.moved_to);
        // The delta rows (including their order) are identical.
        prop_assert_eq!(&baseline.types, &shuffled.types);
    }
}
