//! Access samples: the IBS-derived raw data (§5.1, Table 5.1).
//!
//! Each sample records one randomly tagged memory operation: the data type and offset it
//! touched (resolved through the allocator's address set), the instruction pointer, the
//! CPU, and the cache statistics (which level satisfied the access and the latency).

use serde::{Deserialize, Serialize};
use sim_cache::{CoreId, HitLevel};
use sim_kernel::{SlabAllocator, TypeId};
use sim_machine::{FunctionId, IbsRecord};
use std::collections::HashMap;

/// A single access sample (Table 5.1 of the thesis).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessSample {
    /// The data type containing the accessed address.
    pub type_id: TypeId,
    /// Offset of the accessed address within the object.
    pub offset: u64,
    /// Instruction address responsible for the access.
    pub ip: FunctionId,
    /// The CPU that executed the instruction.
    pub cpu: CoreId,
    /// Which level of the memory system satisfied the access.
    pub level: HitLevel,
    /// Access latency in cycles.
    pub latency: u64,
    /// Whether the access was a write.
    pub is_write: bool,
}

impl AccessSample {
    /// True if the access missed the local L1 (the "% of all L1 misses" metric the
    /// data-profile tables use).
    pub fn is_l1_miss(&self) -> bool {
        self.level != HitLevel::L1
    }

    /// True if the access missed both private cache levels.
    pub fn is_private_miss(&self) -> bool {
        self.level.is_miss()
    }
}

/// Resolves raw IBS records into typed access samples using the allocator's address set.
///
/// Records whose address cannot be attributed to any (live or historical) allocation are
/// dropped, mirroring how DProf ignores samples it cannot type.
pub fn resolve_samples(records: &[IbsRecord], allocator: &SlabAllocator) -> Vec<AccessSample> {
    records
        .iter()
        .filter_map(|r| {
            let resolved = allocator
                .resolve(r.addr)
                .or_else(|| allocator.resolve_historical(r.addr))?;
            Some(AccessSample {
                type_id: resolved.type_id,
                offset: resolved.offset,
                ip: r.ip,
                cpu: r.core,
                level: r.level,
                latency: r.latency,
                is_write: r.kind.is_write(),
            })
        })
        .collect()
}

/// Per-(type, offset, ip) aggregate statistics computed from access samples; this is the
/// `stats` information DProf attaches to path-trace entries (§5.4).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleStats {
    /// Number of samples aggregated.
    pub count: u64,
    /// Samples per satisfying level.
    pub level_counts: HashMap<String, u64>,
    /// Total latency, for averaging.
    pub total_latency: u64,
}

impl SampleStats {
    /// Adds a sample.
    pub fn add(&mut self, s: &AccessSample) {
        self.count += 1;
        *self
            .level_counts
            .entry(s.level.display_name().to_string())
            .or_insert(0) += 1;
        self.total_latency += s.latency;
    }

    /// Average access latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.count as f64
        }
    }

    /// Probability (0..1) that the access was satisfied by the given level.
    pub fn hit_probability(&self, level: HitLevel) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let c = self
            .level_counts
            .get(level.display_name())
            .copied()
            .unwrap_or(0);
        c as f64 / self.count as f64
    }

    /// The most common satisfying level and its probability.
    pub fn dominant_level(&self) -> Option<(String, f64)> {
        let (name, &count) = self.level_counts.iter().max_by_key(|(_, &c)| c)?;
        Some((name.clone(), count as f64 / self.count as f64))
    }
}

/// Key for aggregating samples: `(type, offset, ip)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SampleKey {
    /// Data type.
    pub type_id: TypeId,
    /// Offset within the type, rounded down to the aggregation granularity (8 bytes).
    pub offset: u64,
    /// Instruction pointer.
    pub ip: FunctionId,
}

/// Aggregates access samples by `(type, offset, ip)`.
pub fn aggregate_samples(samples: &[AccessSample]) -> HashMap<SampleKey, SampleStats> {
    let mut map: HashMap<SampleKey, SampleStats> = HashMap::new();
    for s in samples {
        let key = SampleKey {
            type_id: s.type_id,
            offset: s.offset & !7,
            ip: s.ip,
        };
        map.entry(key).or_default().add(s);
    }
    map
}

/// Aggregates samples by `(type, ip)` regardless of offset (used when a path-trace entry
/// has no offset-precise match).
pub fn aggregate_samples_by_ip(
    samples: &[AccessSample],
) -> HashMap<(TypeId, FunctionId), SampleStats> {
    let mut map: HashMap<(TypeId, FunctionId), SampleStats> = HashMap::new();
    for s in samples {
        map.entry((s.type_id, s.ip)).or_default().add(s);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cache::AccessKind;

    fn sample(type_id: u32, offset: u64, ip: u32, level: HitLevel, latency: u64) -> AccessSample {
        AccessSample {
            type_id: TypeId(type_id),
            offset,
            ip: FunctionId(ip),
            cpu: 0,
            level,
            latency,
            is_write: false,
        }
    }

    #[test]
    fn l1_miss_detection() {
        assert!(!sample(0, 0, 0, HitLevel::L1, 3).is_l1_miss());
        assert!(sample(0, 0, 0, HitLevel::L2, 15).is_l1_miss());
        assert!(sample(0, 0, 0, HitLevel::RemoteCache, 200).is_private_miss());
        assert!(!sample(0, 0, 0, HitLevel::L2, 15).is_private_miss());
    }

    #[test]
    fn stats_aggregation_and_probabilities() {
        let mut st = SampleStats::default();
        st.add(&sample(0, 0, 0, HitLevel::L1, 3));
        st.add(&sample(0, 0, 0, HitLevel::L1, 3));
        st.add(&sample(0, 0, 0, HitLevel::RemoteCache, 200));
        assert_eq!(st.count, 3);
        assert!((st.hit_probability(HitLevel::L1) - 2.0 / 3.0).abs() < 1e-9);
        assert!((st.avg_latency() - 206.0 / 3.0).abs() < 1e-9);
        let (name, p) = st.dominant_level().unwrap();
        assert_eq!(name, "local L1");
        assert!(p > 0.5);
    }

    #[test]
    fn aggregation_groups_by_key() {
        let samples = vec![
            sample(1, 0, 10, HitLevel::L1, 3),
            sample(1, 4, 10, HitLevel::L2, 15), // same 8-byte granule as offset 0
            sample(1, 64, 10, HitLevel::L1, 3),
            sample(2, 0, 10, HitLevel::L1, 3),
        ];
        let agg = aggregate_samples(&samples);
        assert_eq!(agg.len(), 3);
        let k = SampleKey {
            type_id: TypeId(1),
            offset: 0,
            ip: FunctionId(10),
        };
        assert_eq!(agg[&k].count, 2);
        let by_ip = aggregate_samples_by_ip(&samples);
        assert_eq!(by_ip[&(TypeId(1), FunctionId(10))].count, 3);
    }

    #[test]
    fn resolution_drops_unknown_addresses() {
        use sim_kernel::{KernelTypes, TypeRegistry};
        use sim_machine::{Machine, MachineConfig};
        let mut m = Machine::new(MachineConfig::small_test());
        let mut reg = TypeRegistry::new();
        let kt = KernelTypes::register(&mut reg);
        let cores = m.cores();
        let mut alloc = SlabAllocator::new(&mut m, &mut reg, cores);
        let addr = alloc.alloc(&mut m, &reg, 0, kt.skbuff);
        let records = vec![
            IbsRecord {
                core: 0,
                ip: FunctionId(1),
                addr: addr + 24,
                kind: AccessKind::Read,
                level: HitLevel::L1,
                latency: 3,
                cycle: 100,
            },
            IbsRecord {
                core: 0,
                ip: FunctionId(1),
                addr: 0xdead_beef_0000,
                kind: AccessKind::Read,
                level: HitLevel::L1,
                latency: 3,
                cycle: 101,
            },
        ];
        let samples = resolve_samples(&records, &alloc);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].type_id, kt.skbuff);
        assert_eq!(samples[0].offset, 24);
    }
}
