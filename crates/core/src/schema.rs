//! The versioned JSON schema layer shared by every dprof emitter and parser.
//!
//! Historically the CLI carried its own JSON document model (`crates/cli/src/json.rs`)
//! while the diff engine re-parsed reports with ad-hoc code; the serve PR moved both
//! here so there is exactly one implementation of:
//!
//! * the dependency-free [`Json`] value model, emitter and parser (the workspace
//!   builds fully offline, so no `serde_json`),
//! * the schema-id constants every document carries ([`REPORT_V1`], [`DIFF_V1`],
//!   [`WHATIF_V1`], [`ACCURACY_V1`], [`SERVE_V1`], [`LOADGEN_V1`]),
//! * the readers that turn documents back into typed values:
//!   [`report_summary_from_json`] (report → diff-engine summary),
//!   [`shard_from_report_json`] (report → mergeable [`ProfileShard`]) and the
//!   [`shard_to_json`]/[`shard_from_json`] pair used by the serve store's snapshots.
//!
//! Object key order is preserved on emit, so documents are byte-stable across runs
//! with identical inputs — the CI determinism job depends on this.

use crate::merge::{
    ProfileShard, ShardFlow, ShardFlowEdge, ShardFlowNode, ShardMeta, ShardMissRow,
    ShardProfileRow, ShardUtilization, ShardUtilizationOrigin, ShardUtilizationRow,
    ShardWorkingSet, ShardWorkingSetRow,
};
use crate::report::diff::{ReportSummary, TypeSummary};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// Schema id of merged profile reports (`dprof -f json`, `dprof replay -f json`).
pub const REPORT_V1: &str = "dprof-report/v1";
/// Schema id of `dprof diff -f json` documents.
pub const DIFF_V1: &str = "dprof-diff/v1";
/// Schema id of `dprof whatif -f json` documents.
pub const WHATIF_V1: &str = "dprof-whatif/v1";
/// Schema id of `dprof accuracy -f json` documents.
pub const ACCURACY_V1: &str = "dprof-accuracy/v1";
/// Schema id of serve-side documents: query replies and on-disk store snapshots.
pub const SERVE_V1: &str = "dprof-serve/v1";
/// Schema id of `dprof loadgen -f json` documents.
pub const LOADGEN_V1: &str = "dprof-loadgen/v1";

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, emitted without a fraction when integral).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved on emit.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for object values.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience constructor for numbers.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Emits the value as pretty-printed JSON (two-space indent, trailing newline).
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_into(&self, out: &mut String, level: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, level + 1);
                    item.write_into(out, level + 1);
                }
                out.push('\n');
                indent(out, level);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, level + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_into(out, level + 1);
                }
                out.push('\n');
                indent(out, level);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.  Returns a message with a byte offset on error.
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing data at byte {}", parser.pos));
        }
        Ok(value)
    }
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our emitter; map lone
                            // surrogates to the replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {start}")),
                    }
                }
                Some(b) => {
                    // Consume one UTF-8 scalar, validating only its own bytes (not the
                    // whole remaining input, which would make parsing quadratic).
                    let len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(format!("invalid utf-8 at byte {start}")),
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or("truncated utf-8 sequence")?;
                    let text = std::str::from_utf8(chunk).map_err(|_| "invalid utf-8")?;
                    s.push_str(text);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9') | Some(b'.') | Some(b'e') | Some(b'E') | Some(b'+') | Some(b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Breadth-first search for every object key in a document (test helper).
pub fn all_keys(root: &Json) -> Vec<String> {
    let mut keys = Vec::new();
    let mut queue: VecDeque<&Json> = VecDeque::new();
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        match v {
            Json::Obj(fields) => {
                for (k, child) in fields {
                    keys.push(k.clone());
                    queue.push_back(child);
                }
            }
            Json::Arr(items) => queue.extend(items.iter()),
            _ => {}
        }
    }
    keys
}

/// Reduces a parsed [`REPORT_V1`] document to the diff engine's [`ReportSummary`].
pub fn report_summary_from_json(doc: &Json) -> Result<ReportSummary, String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(REPORT_V1) => {}
        Some(other) => {
            return Err(format!(
                "schema is '{other}', expected '{REPORT_V1}' (is this a dprof report?)"
            ))
        }
        None => {
            return Err(format!(
                "missing 'schema' field, expected '{REPORT_V1}' (is this a dprof report?)"
            ))
        }
    }
    let profile_rows = doc
        .get("data_profile")
        .and_then(|s| s.get("rows"))
        .and_then(Json::as_array)
        .ok_or_else(|| {
            "report has no data_profile section; re-run dprof with -v data-profile (or all views)"
                .to_string()
        })?;

    let mut types: Vec<TypeSummary> = Vec::new();
    for row in profile_rows {
        let name = row
            .get("type")
            .and_then(Json::as_str)
            .ok_or("data_profile row without a 'type' field")?;
        let mut summary = TypeSummary::absent(name);
        summary.pct_of_l1_misses = row
            .get("pct_of_l1_misses")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        summary.bounce = row.get("bounce").and_then(Json::as_bool).unwrap_or(false);
        summary.working_set_bytes = row
            .get("working_set_bytes")
            .and_then(Json::as_f64)
            .unwrap_or(0.0);
        types.push(summary);
    }

    let find = |types: &mut Vec<TypeSummary>, name: &str| -> usize {
        match types.iter().position(|t| t.name == name) {
            Some(i) => i,
            None => {
                types.push(TypeSummary::absent(name));
                types.len() - 1
            }
        }
    };

    if let Some(rows) = doc
        .get("miss_classification")
        .and_then(|s| s.get("rows"))
        .and_then(Json::as_array)
    {
        for row in rows {
            let Some(name) = row.get("type").and_then(Json::as_str) else {
                continue;
            };
            let i = find(&mut types, name);
            types[i].miss_samples = row
                .get("miss_samples")
                .and_then(Json::as_f64)
                .unwrap_or(0.0) as u64;
            if let Some(fr) = row.get("fractions") {
                types[i].invalidation =
                    fr.get("invalidation").and_then(Json::as_f64).unwrap_or(0.0);
                types[i].conflict = fr.get("conflict").and_then(Json::as_f64).unwrap_or(0.0);
                types[i].capacity = fr.get("capacity").and_then(Json::as_f64).unwrap_or(0.0);
            }
            types[i].dominant_miss = row
                .get("dominant")
                .and_then(Json::as_str)
                .map(|s| s.to_string());
        }
    }

    if let Some(rows) = doc
        .get("utilization")
        .and_then(|s| s.get("rows"))
        .and_then(Json::as_array)
    {
        for row in rows {
            let Some(name) = row.get("type").and_then(Json::as_str) else {
                continue;
            };
            // Types invisible to the miss views can still dominate by wasted
            // bandwidth, so rows here may introduce new entries in the summary.
            let i = find(&mut types, name);
            types[i].utilization_pct = f64_at(row, "utilization_pct");
            types[i].wasted_bytes = u64_at(row, "wasted_bytes");
            types[i].wasted_bytes_per_sec = f64_at(row, "wasted_bytes_per_sec");
            types[i].refetch_ratio = f64_at(row, "refetch_ratio");
        }
    }

    if let Some(rows) = doc
        .get("working_set")
        .and_then(|s| s.get("rows"))
        .and_then(Json::as_array)
    {
        for row in rows {
            let Some(name) = row.get("type").and_then(Json::as_str) else {
                continue;
            };
            let i = find(&mut types, name);
            types[i].working_set_bytes = row
                .get("avg_live_bytes")
                .and_then(Json::as_f64)
                .unwrap_or(types[i].working_set_bytes);
        }
    }

    if let Some(flows) = doc
        .get("data_flow")
        .and_then(|s| s.get("types"))
        .and_then(Json::as_array)
    {
        for flow in flows {
            let Some(name) = flow.get("type").and_then(Json::as_str) else {
                continue;
            };
            let i = find(&mut types, name);
            types[i].core_crossings = flow
                .get("core_crossings")
                .and_then(Json::as_f64)
                .unwrap_or(0.0) as u64;
        }
    }

    // Carried so the diff can report the realized throughput gain (older reports
    // without a throughput section diff fine; the gain line is simply omitted).
    let rps = doc
        .get("throughput")
        .and_then(|t| t.get("aggregate_rps"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);

    Ok(ReportSummary { types, rps })
}

fn f64_at(v: &Json, key: &str) -> f64 {
    v.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

fn u64_at(v: &Json, key: &str) -> u64 {
    f64_at(v, key) as u64
}

fn usize_at(v: &Json, key: &str) -> usize {
    f64_at(v, key) as usize
}

fn bool_at(v: &Json, key: &str) -> bool {
    v.get(key).and_then(Json::as_bool).unwrap_or(false)
}

fn str_at(v: &Json, key: &str) -> String {
    v.get(key).and_then(Json::as_str).unwrap_or("").to_string()
}

/// Converts a full [`REPORT_V1`] document into one mergeable [`ProfileShard`].
///
/// This is how `dprof serve` ingests pushed report shards: the whole report (which may
/// itself summarize several threads) becomes one shard whose weight is the pooled
/// L1-miss sample count, so re-merging many pushed reports weights each by the
/// evidence it carries.  `ordinal` fixes the shard's position in the canonical fold
/// order (the server assigns monotonically increasing ordinals per store key).
pub fn shard_from_report_json(doc: &Json, ordinal: u64) -> Result<ProfileShard, String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(REPORT_V1) => {}
        Some(other) => {
            return Err(format!(
                "schema is '{other}', expected '{REPORT_V1}' (is this a dprof report?)"
            ))
        }
        None => {
            return Err(format!(
                "missing 'schema' field, expected '{REPORT_V1}' (is this a dprof report?)"
            ))
        }
    }
    let run = doc.get("run");
    let threads_in_report = run.map(|r| usize_at(r, "threads").max(1)).unwrap_or(1);
    let throughput = doc.get("throughput");
    let per_thread_samples: u64 = throughput
        .and_then(|t| t.get("per_thread"))
        .and_then(Json::as_array)
        .map(|rows| rows.iter().map(|r| u64_at(r, "samples")).sum())
        .unwrap_or(0);

    let mut data_profile = Vec::new();
    let mut sum_l1: u64 = 0;
    let mut sum_pct: f64 = 0.0;
    if let Some(rows) = doc
        .get("data_profile")
        .and_then(|s| s.get("rows"))
        .and_then(Json::as_array)
    {
        for row in rows {
            let name = row
                .get("type")
                .and_then(Json::as_str)
                .ok_or("data_profile row without a 'type' field")?
                .to_string();
            let l1 = u64_at(row, "l1_miss_samples");
            sum_l1 += l1;
            sum_pct += f64_at(row, "pct_of_l1_misses");
            data_profile.push(ShardProfileRow {
                name,
                description: str_at(row, "description"),
                working_set_bytes: f64_at(row, "working_set_bytes"),
                pct_of_l1_misses: f64_at(row, "pct_of_l1_misses"),
                pct_of_miss_cycles: f64_at(row, "pct_of_miss_cycles"),
                bounce: bool_at(row, "bounce"),
                samples: u64_at(row, "samples"),
                l1_miss_samples: l1,
                threads_seen: usize_at(row, "threads_seen").max(1),
            });
        }
    }
    // The report's rows carry shares relative to the *total* miss-sample pool, which
    // may exceed the per-row sum when some misses went unattributed; reconstruct the
    // pool so this shard's weight matches the denominator its percentages assume.
    let weight = if sum_pct > 1e-9 {
        (sum_l1 as f64 * 100.0 / sum_pct).round()
    } else {
        sum_l1 as f64
    };

    let mut miss_classification = Vec::new();
    if let Some(rows) = doc
        .get("miss_classification")
        .and_then(|s| s.get("rows"))
        .and_then(Json::as_array)
    {
        for row in rows {
            let fr = row.get("fractions");
            miss_classification.push(ShardMissRow {
                name: str_at(row, "type"),
                miss_samples: u64_at(row, "miss_samples"),
                invalidation: fr.map(|f| f64_at(f, "invalidation")).unwrap_or(0.0),
                conflict: fr.map(|f| f64_at(f, "conflict")).unwrap_or(0.0),
                capacity: fr.map(|f| f64_at(f, "capacity")).unwrap_or(0.0),
            });
        }
    }

    let util = doc.get("utilization");
    let utilization = ShardUtilization {
        rows: util
            .and_then(|u| u.get("rows"))
            .and_then(Json::as_array)
            .map(|rows| rows.iter().map(shard_utilization_row).collect())
            .unwrap_or_default(),
        total_fetches: util.map(|u| u64_at(u, "total_fetches")).unwrap_or(0),
        total_refetches: util.map(|u| u64_at(u, "total_refetches")).unwrap_or(0),
        resolved_slots_fetched: util
            .map(|u| u64_at(u, "resolved_slots_fetched"))
            .unwrap_or(0),
        resolved_slots_touched: util
            .map(|u| u64_at(u, "resolved_slots_touched"))
            .unwrap_or(0),
    };

    let ws = doc.get("working_set");
    let working_set = ShardWorkingSet {
        rows: ws
            .and_then(|w| w.get("rows"))
            .and_then(Json::as_array)
            .map(|rows| {
                rows.iter()
                    .map(|row| ShardWorkingSetRow {
                        name: str_at(row, "type"),
                        description: str_at(row, "description"),
                        avg_live_bytes: f64_at(row, "avg_live_bytes"),
                        avg_live_objects: f64_at(row, "avg_live_objects"),
                        peak_live_bytes: u64_at(row, "peak_live_bytes"),
                        threads_seen: usize_at(row, "threads_seen").max(1),
                    })
                    .collect()
            })
            .unwrap_or_default(),
        cache_capacity: ws.map(|w| u64_at(w, "cache_capacity_bytes")).unwrap_or(0),
        cache_ways: ws.map(|w| usize_at(w, "cache_ways")).unwrap_or(0),
        total_avg_bytes: ws.map(|w| f64_at(w, "total_avg_bytes")).unwrap_or(0.0),
        thread_count: threads_in_report,
        threads_exceeding_capacity: ws
            .map(|w| usize_at(w, "threads_exceeding_capacity"))
            .unwrap_or(0),
        conflict_sets: ws.map(|w| usize_at(w, "max_conflict_sets")).unwrap_or(0),
    };

    let mut data_flows = Vec::new();
    if let Some(flows) = doc
        .get("data_flow")
        .and_then(|s| s.get("types"))
        .and_then(Json::as_array)
    {
        for flow in flows {
            data_flows.push(ShardFlow {
                type_name: str_at(flow, "type"),
                nodes: flow
                    .get("nodes")
                    .and_then(Json::as_array)
                    .map(|nodes| {
                        nodes
                            .iter()
                            .map(|n| ShardFlowNode {
                                function: str_at(n, "function"),
                                samples: u64_at(n, "samples"),
                                weight: u64_at(n, "weight"),
                                avg_latency: f64_at(n, "avg_latency"),
                            })
                            .collect()
                    })
                    .unwrap_or_default(),
                edges: flow
                    .get("edges")
                    .and_then(Json::as_array)
                    .map(|edges| {
                        edges
                            .iter()
                            .map(|e| ShardFlowEdge {
                                from: str_at(e, "from"),
                                to: str_at(e, "to"),
                                count: u64_at(e, "count"),
                                cpu_change: bool_at(e, "cpu_change"),
                            })
                            .collect()
                    })
                    .unwrap_or_default(),
            });
        }
    }
    data_flows.sort_by(|a, b| a.type_name.cmp(&b.type_name));

    Ok(ProfileShard {
        ordinal,
        weight,
        meta: ShardMeta {
            thread: 0,
            seed: run.map(|r| u64_at(r, "base_seed")).unwrap_or(0),
            requests: throughput.map(|t| u64_at(t, "total_requests")).unwrap_or(0),
            rps: throughput
                .map(|t| f64_at(t, "aggregate_rps"))
                .unwrap_or(0.0),
            profiling_fraction: throughput
                .map(|t| f64_at(t, "profiling_fraction"))
                .unwrap_or(0.0),
            samples: per_thread_samples,
            total_cycles: 0,
        },
        data_profile,
        miss_classification,
        utilization,
        working_set,
        data_flows,
    })
}

/// Parses one utilization row (shared by report ingestion and snapshot loading —
/// both carry the same per-row keys).
fn shard_utilization_row(row: &Json) -> ShardUtilizationRow {
    ShardUtilizationRow {
        name: str_at(row, "type"),
        description: str_at(row, "description"),
        slots_fetched: u64_at(row, "slots_fetched"),
        slots_touched: u64_at(row, "slots_touched"),
        refetch_slots: u64_at(row, "refetch_slots"),
        wasted_bytes_per_sec: f64_at(row, "wasted_bytes_per_sec"),
        origins: row
            .get("origins")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .map(|o| ShardUtilizationOrigin {
                origin: str_at(o, "origin"),
                slots_fetched: u64_at(o, "slots_fetched"),
                slots_touched: u64_at(o, "slots_touched"),
            })
            .collect(),
    }
}

/// Serializes a [`ProfileShard`] as the `shard` body of a [`SERVE_V1`] snapshot.
pub fn shard_to_json(shard: &ProfileShard) -> Json {
    Json::obj(vec![
        ("ordinal", Json::num(shard.ordinal as f64)),
        ("weight", Json::num(shard.weight)),
        (
            "meta",
            Json::obj(vec![
                ("thread", Json::num(shard.meta.thread as f64)),
                ("seed", Json::num(shard.meta.seed as f64)),
                ("requests", Json::num(shard.meta.requests as f64)),
                ("rps", Json::num(shard.meta.rps)),
                (
                    "profiling_fraction",
                    Json::num(shard.meta.profiling_fraction),
                ),
                ("samples", Json::num(shard.meta.samples as f64)),
                ("total_cycles", Json::num(shard.meta.total_cycles as f64)),
            ]),
        ),
        (
            "data_profile",
            Json::Arr(
                shard
                    .data_profile
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("type", Json::str(&r.name)),
                            ("description", Json::str(&r.description)),
                            ("working_set_bytes", Json::num(r.working_set_bytes)),
                            ("pct_of_l1_misses", Json::num(r.pct_of_l1_misses)),
                            ("pct_of_miss_cycles", Json::num(r.pct_of_miss_cycles)),
                            ("bounce", Json::Bool(r.bounce)),
                            ("samples", Json::num(r.samples as f64)),
                            ("l1_miss_samples", Json::num(r.l1_miss_samples as f64)),
                            ("threads_seen", Json::num(r.threads_seen as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "miss_classification",
            Json::Arr(
                shard
                    .miss_classification
                    .iter()
                    .map(|r| {
                        Json::obj(vec![
                            ("type", Json::str(&r.name)),
                            ("miss_samples", Json::num(r.miss_samples as f64)),
                            ("invalidation", Json::num(r.invalidation)),
                            ("conflict", Json::num(r.conflict)),
                            ("capacity", Json::num(r.capacity)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "utilization",
            Json::obj(vec![
                (
                    "rows",
                    Json::Arr(
                        shard
                            .utilization
                            .rows
                            .iter()
                            .map(|r| {
                                Json::obj(vec![
                                    ("type", Json::str(&r.name)),
                                    ("description", Json::str(&r.description)),
                                    ("slots_fetched", Json::num(r.slots_fetched as f64)),
                                    ("slots_touched", Json::num(r.slots_touched as f64)),
                                    ("refetch_slots", Json::num(r.refetch_slots as f64)),
                                    ("wasted_bytes_per_sec", Json::num(r.wasted_bytes_per_sec)),
                                    (
                                        "origins",
                                        Json::Arr(
                                            r.origins
                                                .iter()
                                                .map(|o| {
                                                    Json::obj(vec![
                                                        ("origin", Json::str(&o.origin)),
                                                        (
                                                            "slots_fetched",
                                                            Json::num(o.slots_fetched as f64),
                                                        ),
                                                        (
                                                            "slots_touched",
                                                            Json::num(o.slots_touched as f64),
                                                        ),
                                                    ])
                                                })
                                                .collect(),
                                        ),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "total_fetches",
                    Json::num(shard.utilization.total_fetches as f64),
                ),
                (
                    "total_refetches",
                    Json::num(shard.utilization.total_refetches as f64),
                ),
                (
                    "resolved_slots_fetched",
                    Json::num(shard.utilization.resolved_slots_fetched as f64),
                ),
                (
                    "resolved_slots_touched",
                    Json::num(shard.utilization.resolved_slots_touched as f64),
                ),
            ]),
        ),
        (
            "working_set",
            Json::obj(vec![
                (
                    "rows",
                    Json::Arr(
                        shard
                            .working_set
                            .rows
                            .iter()
                            .map(|r| {
                                Json::obj(vec![
                                    ("type", Json::str(&r.name)),
                                    ("description", Json::str(&r.description)),
                                    ("avg_live_bytes", Json::num(r.avg_live_bytes)),
                                    ("avg_live_objects", Json::num(r.avg_live_objects)),
                                    ("peak_live_bytes", Json::num(r.peak_live_bytes as f64)),
                                    ("threads_seen", Json::num(r.threads_seen as f64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "cache_capacity_bytes",
                    Json::num(shard.working_set.cache_capacity as f64),
                ),
                ("cache_ways", Json::num(shard.working_set.cache_ways as f64)),
                (
                    "total_avg_bytes",
                    Json::num(shard.working_set.total_avg_bytes),
                ),
                (
                    "thread_count",
                    Json::num(shard.working_set.thread_count as f64),
                ),
                (
                    "threads_exceeding_capacity",
                    Json::num(shard.working_set.threads_exceeding_capacity as f64),
                ),
                (
                    "conflict_sets",
                    Json::num(shard.working_set.conflict_sets as f64),
                ),
            ]),
        ),
        (
            "data_flows",
            Json::Arr(
                shard
                    .data_flows
                    .iter()
                    .map(|f| {
                        Json::obj(vec![
                            ("type", Json::str(&f.type_name)),
                            (
                                "nodes",
                                Json::Arr(
                                    f.nodes
                                        .iter()
                                        .map(|n| {
                                            Json::obj(vec![
                                                ("function", Json::str(&n.function)),
                                                ("samples", Json::num(n.samples as f64)),
                                                ("weight", Json::num(n.weight as f64)),
                                                ("avg_latency", Json::num(n.avg_latency)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                            (
                                "edges",
                                Json::Arr(
                                    f.edges
                                        .iter()
                                        .map(|e| {
                                            Json::obj(vec![
                                                ("from", Json::str(&e.from)),
                                                ("to", Json::str(&e.to)),
                                                ("count", Json::num(e.count as f64)),
                                                ("cpu_change", Json::Bool(e.cpu_change)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Deserializes a shard written by [`shard_to_json`].
pub fn shard_from_json(doc: &Json) -> Result<ProfileShard, String> {
    let meta = doc.get("meta").ok_or("shard without a 'meta' object")?;
    let ws = doc
        .get("working_set")
        .ok_or("shard without a 'working_set' object")?;
    Ok(ProfileShard {
        ordinal: u64_at(doc, "ordinal"),
        weight: f64_at(doc, "weight"),
        meta: ShardMeta {
            thread: usize_at(meta, "thread"),
            seed: u64_at(meta, "seed"),
            requests: u64_at(meta, "requests"),
            rps: f64_at(meta, "rps"),
            profiling_fraction: f64_at(meta, "profiling_fraction"),
            samples: u64_at(meta, "samples"),
            total_cycles: u64_at(meta, "total_cycles"),
        },
        data_profile: doc
            .get("data_profile")
            .and_then(Json::as_array)
            .ok_or("shard without a 'data_profile' array")?
            .iter()
            .map(|r| ShardProfileRow {
                name: str_at(r, "type"),
                description: str_at(r, "description"),
                working_set_bytes: f64_at(r, "working_set_bytes"),
                pct_of_l1_misses: f64_at(r, "pct_of_l1_misses"),
                pct_of_miss_cycles: f64_at(r, "pct_of_miss_cycles"),
                bounce: bool_at(r, "bounce"),
                samples: u64_at(r, "samples"),
                l1_miss_samples: u64_at(r, "l1_miss_samples"),
                threads_seen: usize_at(r, "threads_seen").max(1),
            })
            .collect(),
        miss_classification: doc
            .get("miss_classification")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .map(|r| ShardMissRow {
                name: str_at(r, "type"),
                miss_samples: u64_at(r, "miss_samples"),
                invalidation: f64_at(r, "invalidation"),
                conflict: f64_at(r, "conflict"),
                capacity: f64_at(r, "capacity"),
            })
            .collect(),
        utilization: {
            let util = doc.get("utilization");
            ShardUtilization {
                rows: util
                    .and_then(|u| u.get("rows"))
                    .and_then(Json::as_array)
                    .map(|rows| rows.iter().map(shard_utilization_row).collect())
                    .unwrap_or_default(),
                total_fetches: util.map(|u| u64_at(u, "total_fetches")).unwrap_or(0),
                total_refetches: util.map(|u| u64_at(u, "total_refetches")).unwrap_or(0),
                resolved_slots_fetched: util
                    .map(|u| u64_at(u, "resolved_slots_fetched"))
                    .unwrap_or(0),
                resolved_slots_touched: util
                    .map(|u| u64_at(u, "resolved_slots_touched"))
                    .unwrap_or(0),
            }
        },
        working_set: ShardWorkingSet {
            rows: ws
                .get("rows")
                .and_then(Json::as_array)
                .unwrap_or(&[])
                .iter()
                .map(|r| ShardWorkingSetRow {
                    name: str_at(r, "type"),
                    description: str_at(r, "description"),
                    avg_live_bytes: f64_at(r, "avg_live_bytes"),
                    avg_live_objects: f64_at(r, "avg_live_objects"),
                    peak_live_bytes: u64_at(r, "peak_live_bytes"),
                    threads_seen: usize_at(r, "threads_seen").max(1),
                })
                .collect(),
            cache_capacity: u64_at(ws, "cache_capacity_bytes"),
            cache_ways: usize_at(ws, "cache_ways"),
            total_avg_bytes: f64_at(ws, "total_avg_bytes"),
            thread_count: usize_at(ws, "thread_count").max(1),
            threads_exceeding_capacity: usize_at(ws, "threads_exceeding_capacity"),
            conflict_sets: usize_at(ws, "conflict_sets"),
        },
        data_flows: doc
            .get("data_flows")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .map(|f| ShardFlow {
                type_name: str_at(f, "type"),
                nodes: f
                    .get("nodes")
                    .and_then(Json::as_array)
                    .unwrap_or(&[])
                    .iter()
                    .map(|n| ShardFlowNode {
                        function: str_at(n, "function"),
                        samples: u64_at(n, "samples"),
                        weight: u64_at(n, "weight"),
                        avg_latency: f64_at(n, "avg_latency"),
                    })
                    .collect(),
                edges: f
                    .get("edges")
                    .and_then(Json::as_array)
                    .unwrap_or(&[])
                    .iter()
                    .map(|e| ShardFlowEdge {
                        from: str_at(e, "from"),
                        to: str_at(e, "to"),
                        count: u64_at(e, "count"),
                        cpu_change: bool_at(e, "cpu_change"),
                    })
                    .collect(),
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Json::obj(vec![
            ("name", Json::str("skbuff")),
            ("bounce", Json::Bool(true)),
            ("pct", Json::num(45.4)),
            ("count", Json::num(1234u32)),
            (
                "tags",
                Json::Arr(vec![Json::str("a \"quoted\" one"), Json::Null]),
            ),
            (
                "nested",
                Json::obj(vec![
                    ("empty_arr", Json::Arr(vec![])),
                    ("empty_obj", Json::Obj(vec![])),
                ]),
            ),
        ]);
        let text = doc.to_pretty_string();
        let back = Json::parse(&text).expect("parses");
        assert_eq!(back, doc);
        assert_eq!(back.get("name").and_then(Json::as_str), Some("skbuff"));
        assert_eq!(back.get("pct").and_then(Json::as_f64), Some(45.4));
        assert_eq!(back.get("count").and_then(Json::as_f64), Some(1234.0));
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert!(Json::num(3u32).to_pretty_string().starts_with('3'));
        assert!(!Json::num(3u32).to_pretty_string().contains('.'));
        assert!(Json::num(2.5).to_pretty_string().starts_with("2.5"));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("true false").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let doc = Json::str("line1\nline2\ttab\u{1}");
        let text = doc.to_pretty_string();
        assert!(text.contains("\\n"));
        assert!(text.contains("\\t"));
        assert!(text.contains("\\u0001"));
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    fn sample_shard() -> ProfileShard {
        ProfileShard {
            ordinal: 7,
            weight: 120.0,
            meta: ShardMeta {
                thread: 2,
                seed: 99,
                requests: 1000,
                rps: 123.5,
                profiling_fraction: 0.02,
                samples: 400,
                total_cycles: 50_000,
            },
            data_profile: vec![ShardProfileRow {
                name: "skbuff".into(),
                description: "socket buffer".into(),
                working_set_bytes: 4096.0,
                pct_of_l1_misses: 61.25,
                pct_of_miss_cycles: 58.5,
                bounce: true,
                samples: 300,
                l1_miss_samples: 120,
                threads_seen: 1,
            }],
            miss_classification: vec![ShardMissRow {
                name: "skbuff".into(),
                miss_samples: 120,
                invalidation: 0.7,
                conflict: 0.1,
                capacity: 0.2,
            }],
            utilization: ShardUtilization {
                rows: vec![ShardUtilizationRow {
                    name: "skbuff".into(),
                    description: "socket buffer".into(),
                    slots_fetched: 960,
                    slots_touched: 240,
                    refetch_slots: 120,
                    wasted_bytes_per_sec: 57_600.0,
                    origins: vec![ShardUtilizationOrigin {
                        origin: "cpu2".into(),
                        slots_fetched: 960,
                        slots_touched: 240,
                    }],
                }],
                total_fetches: 120,
                total_refetches: 15,
                resolved_slots_fetched: 960,
                resolved_slots_touched: 240,
            },
            working_set: ShardWorkingSet {
                rows: vec![ShardWorkingSetRow {
                    name: "skbuff".into(),
                    description: "socket buffer".into(),
                    avg_live_bytes: 2048.0,
                    avg_live_objects: 8.0,
                    peak_live_bytes: 4096,
                    threads_seen: 1,
                }],
                cache_capacity: 262_144,
                cache_ways: 8,
                total_avg_bytes: 2048.0,
                thread_count: 1,
                threads_exceeding_capacity: 0,
                conflict_sets: 3,
            },
            data_flows: vec![ShardFlow {
                type_name: "skbuff".into(),
                nodes: vec![ShardFlowNode {
                    function: "netif_rx".into(),
                    samples: 50,
                    weight: 60,
                    avg_latency: 12.5,
                }],
                edges: vec![ShardFlowEdge {
                    from: "netif_rx".into(),
                    to: "udp_deliver".into(),
                    count: 40,
                    cpu_change: true,
                }],
            }],
        }
    }

    #[test]
    fn shard_roundtrips_through_json() {
        let shard = sample_shard();
        let doc = shard_to_json(&shard);
        let text = doc.to_pretty_string();
        let back = shard_from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, shard);
    }

    #[test]
    fn shard_from_report_rejects_wrong_schema() {
        let doc = Json::obj(vec![("schema", Json::str("dprof-diff/v1"))]);
        assert!(shard_from_report_json(&doc, 0)
            .unwrap_err()
            .contains("schema"));
        let none = Json::obj(vec![("hello", Json::num(1u32))]);
        assert!(shard_from_report_json(&none, 0)
            .unwrap_err()
            .contains("missing 'schema'"));
    }
}
