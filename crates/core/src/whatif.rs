//! The what-if prediction model: turning two measurement replays (baseline vs. a
//! candidate fix) into a predicted throughput gain with calibrated confidence.
//!
//! The raw material is a pair of *makespan trajectories* — the machine's max core
//! clock sampled at every measured round boundary, once for the identity baseline and
//! once for the candidate transform.  Both replays consume the identical event stream,
//! so round `i` covers the same work in both; the per-round makespan delta is the
//! causal effect of the fix on that slice of the run.
//!
//! Point estimate: `gain = (base - fix) / base` over the whole window — the fraction
//! of end-to-end simulated time the fix removes (equivalently, the predicted
//! per-request latency reduction; `speedup = base / fix`).
//!
//! Confidence: the window is chunked into at most [`MAX_BLOCKS`] equal round blocks
//! and each block votes "improved" iff its makespan shrank.  The 95% Wilson interval
//! on that vote fraction (reused from [`crate::stats`]) gates the `confident` flag —
//! a fix is confident when even the interval's low end says most blocks improved —
//! and the per-block gain spread yields a gain interval used for rank-stability
//! marking across candidates ([`crate::stats::mark_rank_stability`]).

use crate::stats::{mark_rank_stability, wilson95};

/// Maximum number of per-window blocks used for the vote statistics.
pub const MAX_BLOCKS: usize = 16;

/// z for a two-sided 95% interval (matches [`crate::stats`]).
const Z95: f64 = 1.959963984540054;

/// One block's worth of measured cycles under the baseline and the candidate fix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockDelta {
    /// Baseline makespan growth across the block's rounds.
    pub base_cycles: u64,
    /// Candidate makespan growth across the same rounds.
    pub fix_cycles: u64,
}

impl BlockDelta {
    /// The block's fractional gain (positive when the fix is faster).
    pub fn gain(&self) -> f64 {
        if self.base_cycles == 0 {
            0.0
        } else {
            (self.base_cycles as f64 - self.fix_cycles as f64) / self.base_cycles as f64
        }
    }
}

/// Chunks two aligned cumulative-makespan series into at most [`MAX_BLOCKS`] blocks.
///
/// `base` and `fix` hold the makespan at each measured round boundary; `base_start` /
/// `fix_start` are the makespans at the start of the window (end of warmup).  The
/// series come from replays of the same events, so they have equal length for a
/// faithful trace; a divergent tail is truncated to the shorter series.
pub fn blocks_from_rounds(
    base: &[u64],
    fix: &[u64],
    base_start: u64,
    fix_start: u64,
) -> Vec<BlockDelta> {
    let rounds = base.len().min(fix.len());
    if rounds == 0 {
        return Vec::new();
    }
    let blocks = rounds.min(MAX_BLOCKS);
    (0..blocks)
        .map(|b| {
            let lo = b * rounds / blocks; // first round of the block
            let hi = (b + 1) * rounds / blocks; // one past the last round
            let base_lo = if lo == 0 { base_start } else { base[lo - 1] };
            let fix_lo = if lo == 0 { fix_start } else { fix[lo - 1] };
            BlockDelta {
                base_cycles: base[hi - 1].saturating_sub(base_lo),
                fix_cycles: fix[hi - 1].saturating_sub(fix_lo),
            }
        })
        .collect()
}

/// A candidate fix's predicted effect, with block-vote confidence.
#[derive(Debug, Clone, PartialEq)]
pub struct GainEstimate {
    /// Baseline window cycles (sum over blocks and streams).
    pub base_cycles: u64,
    /// Candidate window cycles.
    pub fix_cycles: u64,
    /// Predicted fractional throughput gain: `(base - fix) / base`.
    pub gain: f64,
    /// Predicted speedup: `base / fix` (1.0 when nothing changed).
    pub speedup: f64,
    /// Number of measurement blocks.
    pub blocks: u64,
    /// Blocks whose makespan shrank under the fix.
    pub blocks_improved: u64,
    /// 95% Wilson interval on the fraction of improved blocks.
    pub win_ci: (f64, f64),
    /// True when the interval's low end exceeds 1/2 — even pessimistically, most of
    /// the run improves.
    pub confident: bool,
    /// 95% normal interval on the mean per-block gain (used for rank stability).
    pub gain_ci: (f64, f64),
}

/// Builds a [`GainEstimate`] from per-block deltas (concatenated across streams).
pub fn estimate_gain(blocks: &[BlockDelta]) -> GainEstimate {
    let base_cycles: u64 = blocks.iter().map(|b| b.base_cycles).sum();
    let fix_cycles: u64 = blocks.iter().map(|b| b.fix_cycles).sum();
    let gain = if base_cycles == 0 {
        0.0
    } else {
        (base_cycles as f64 - fix_cycles as f64) / base_cycles as f64
    };
    let speedup = if fix_cycles == 0 {
        1.0
    } else {
        base_cycles as f64 / fix_cycles as f64
    };
    let n = blocks.len() as u64;
    let improved = blocks
        .iter()
        .filter(|b| b.fix_cycles < b.base_cycles)
        .count() as u64;
    let win_ci = wilson95(improved, n);
    let gains: Vec<f64> = blocks.iter().map(BlockDelta::gain).collect();
    let gain_ci = if gains.is_empty() {
        (0.0, 0.0)
    } else {
        let mean = gains.iter().sum::<f64>() / gains.len() as f64;
        let var =
            gains.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gains.len().max(1) as f64;
        let half = Z95 * (var / gains.len() as f64).sqrt();
        (mean - half, mean + half)
    };
    GainEstimate {
        base_cycles,
        fix_cycles,
        gain,
        speedup,
        blocks: n,
        blocks_improved: improved,
        confident: n > 0 && win_ci.0 > 0.5,
        win_ci,
        gain_ci,
    }
}

/// Ranks candidate estimates by predicted gain (descending, label tie-break) and marks
/// which ranks are statistically stable.  Returns the candidates' indices in rank
/// order paired with their stability flags.
pub fn rank_candidates<L: AsRef<str>>(candidates: &[(L, GainEstimate)]) -> Vec<(usize, bool)> {
    let mut order: Vec<usize> = (0..candidates.len()).collect();
    order.sort_by(|&a, &b| {
        candidates[b]
            .1
            .gain
            .partial_cmp(&candidates[a].1.gain)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| candidates[a].0.as_ref().cmp(candidates[b].0.as_ref()))
    });
    let intervals: Vec<(f64, f64)> = order.iter().map(|&i| candidates[i].1.gain_ci).collect();
    let stable = mark_rank_stability(&intervals);
    order.into_iter().zip(stable).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(start: u64, per_round: u64, rounds: usize) -> Vec<u64> {
        (1..=rounds as u64).map(|r| start + r * per_round).collect()
    }

    #[test]
    fn blocks_partition_the_whole_window() {
        let base = series(100, 10, 40);
        let fix = series(100, 8, 40);
        let blocks = blocks_from_rounds(&base, &fix, 100, 100);
        assert_eq!(blocks.len(), MAX_BLOCKS);
        assert_eq!(blocks.iter().map(|b| b.base_cycles).sum::<u64>(), 400);
        assert_eq!(blocks.iter().map(|b| b.fix_cycles).sum::<u64>(), 320);
    }

    #[test]
    fn fewer_rounds_than_blocks_degrades_gracefully() {
        let base = series(0, 10, 3);
        let fix = series(0, 10, 3);
        assert_eq!(blocks_from_rounds(&base, &fix, 0, 0).len(), 3);
        assert!(blocks_from_rounds(&[], &[], 0, 0).is_empty());
    }

    #[test]
    fn a_uniform_improvement_is_confident() {
        let blocks = blocks_from_rounds(&series(0, 100, 32), &series(0, 60, 32), 0, 0);
        let est = estimate_gain(&blocks);
        assert!((est.gain - 0.4).abs() < 1e-9);
        assert!((est.speedup - 100.0 / 60.0).abs() < 1e-9);
        assert_eq!(est.blocks_improved, est.blocks);
        assert!(est.confident);
    }

    #[test]
    fn a_no_op_fix_is_not_confident() {
        let blocks = blocks_from_rounds(&series(0, 100, 32), &series(0, 100, 32), 0, 0);
        let est = estimate_gain(&blocks);
        assert_eq!(est.gain, 0.0);
        assert_eq!(est.blocks_improved, 0);
        assert!(!est.confident);
    }

    #[test]
    fn ranking_orders_by_gain_and_marks_separated_ranks_stable() {
        let big = estimate_gain(&blocks_from_rounds(
            &series(0, 100, 16),
            &series(0, 50, 16),
            0,
            0,
        ));
        let small = estimate_gain(&blocks_from_rounds(
            &series(0, 100, 16),
            &series(0, 95, 16),
            0,
            0,
        ));
        let ranked = rank_candidates(&[("small", small), ("big", big)]);
        assert_eq!(ranked[0].0, 1, "the bigger gain ranks first");
        assert!(ranked[0].1 && ranked[1].1, "disjoint intervals are stable");
    }
}
