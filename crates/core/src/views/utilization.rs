//! The line-utilization view (the fifth view, beyond the thesis's four): data types
//! ranked by the bandwidth they waste on fetched-but-never-touched bytes.
//!
//! The miss-share views localize *where* misses land; this view says *how much of each
//! fetched line is ever used* before eviction — the signal that exposes sparse-struct
//! waste and hot/cold field mixing, where a type's miss count looks unremarkable but
//! every one of its fetches drags in a line of mostly dead bytes.  Three metrics per
//! type, derived from the machine's per-residency granule tally
//! ([`sim_cache::UtilizationTally`]):
//!
//! * **line utilization %** — of the 8-byte granule-slots the type's fetches brought
//!   in, the share that was touched at least once before eviction,
//! * **wasted bytes (and bytes/s)** — the untouched remainder, i.e. interconnect and
//!   DRAM bandwidth spent moving dead bytes,
//! * **re-fetch ratio** — the share of the type's fetched slots on lines the core had
//!   already fetched before: traffic re-reading evicted-then-reused data.
//!
//! Granules are attributed to types through the allocator's address set with the same
//! live-then-historical rule as every other view, and additionally to an *allocation
//! origin* (the core whose slab the object came from), so a row can show which CPU's
//! allocations produce the waste.

use crate::stats::{mark_rank_stability, wilson95};
use serde::{Deserialize, Serialize};
use sim_cache::UtilizationTally;
use sim_kernel::{AllocRecord, SlabAllocator, TypeId, TypeRegistry};
use std::collections::HashMap;

/// Per-allocation-origin share of one utilization row (the allocator attribution
/// axis: which core's slab the fetched objects were allocated from).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationOrigin {
    /// Origin label, `"cpu<k>"` for the allocating core's slab.
    pub origin: String,
    /// Granule-slots fetched for objects from this origin.
    pub slots_fetched: u64,
    /// Of those, slots touched before eviction.
    pub slots_touched: u64,
    /// Untouched bytes fetched for this origin (`8 * (fetched - touched)`).
    pub wasted_bytes: u64,
}

/// One row of the utilization view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UtilizationRow {
    /// The type.
    pub type_id: TypeId,
    /// Type name.
    pub name: String,
    /// Human-readable description.
    pub description: String,
    /// Granule-slots fetched: for every counted line fill, each 8-byte granule of the
    /// line owned by this type counts as one fetched slot.
    pub slots_fetched: u64,
    /// Of the fetched slots, those touched at least once during their residency.
    pub slots_touched: u64,
    /// Fetched slots that rode a *re-fetch* — a fill of a line the core had already
    /// fetched before (evicted-then-reused traffic).
    pub refetch_slots: u64,
    /// `100 * slots_touched / slots_fetched`.
    pub utilization_pct: f64,
    /// Bytes fetched for the type but never touched: `8 * (slots_fetched -
    /// slots_touched)`.
    pub wasted_bytes: u64,
    /// Wasted bytes normalised to simulated wall-clock time (the bandwidth the type
    /// burns on dead bytes).
    pub wasted_bytes_per_sec: f64,
    /// `refetch_slots / slots_fetched`.
    pub refetch_ratio: f64,
    /// Lower bound of the 95% (Wilson) confidence interval on the utilization
    /// fraction, percent.
    pub ci95_low: f64,
    /// Upper bound of the 95% confidence interval on the utilization fraction,
    /// percent.
    pub ci95_high: f64,
    /// True when the row's wasted-bytes rank is statistically firm (see
    /// [`mark_rank_stability`]; intervals are wasted-byte ranges implied by the
    /// utilization CI).
    pub rank_stable: bool,
    /// Per-allocation-origin breakdown, most-wasteful origin first.
    pub origins: Vec<UtilizationOrigin>,
}

/// The utilization view of one profiling phase (sampled or exact, depending on the
/// tally it was built from).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UtilizationProfile {
    /// Per-type rows, ranked by wasted bytes (descending; name breaks ties).
    pub rows: Vec<UtilizationRow>,
    /// Counted line fills in the underlying tally (resolvable or not).
    pub total_fetches: u64,
    /// Of the counted fills, re-fetches of previously fetched lines.
    pub total_refetches: u64,
    /// Granule-slots fetched that resolved to a type (the rows' denominator pool).
    pub resolved_slots_fetched: u64,
    /// Of the resolved slots, those touched before eviction.
    pub resolved_slots_touched: u64,
    /// Cycle length of the collection window (for the bytes/s normalisation).
    pub window_cycles: u64,
    /// Simulated clock frequency the normalisation used.
    pub cycles_per_second: u64,
}

impl UtilizationProfile {
    /// The row for a type name, if present.
    pub fn row(&self, name: &str) -> Option<&UtilizationRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// The rank (0 = most wasted bytes) of a type name.
    pub fn rank_of(&self, name: &str) -> Option<usize> {
        self.rows.iter().position(|r| r.name == name)
    }

    /// Total wasted bytes across resolved rows.
    pub fn wasted_bytes_total(&self) -> u64 {
        8 * (self.resolved_slots_fetched - self.resolved_slots_touched)
    }

    /// Overall utilization percentage of the resolved slots.
    pub fn overall_utilization_pct(&self) -> f64 {
        if self.resolved_slots_fetched == 0 {
            0.0
        } else {
            100.0 * self.resolved_slots_touched as f64 / self.resolved_slots_fetched as f64
        }
    }
}

/// Re-derives a row's ratio columns (utilization %, wasted bytes, bytes/s, re-fetch
/// ratio, confidence interval) from its pooled slot counters.  Used both here and by
/// the report merge after pooling counters across shards.
pub fn finish_utilization_row(
    row: &mut UtilizationRow,
    window_cycles: u64,
    cycles_per_second: u64,
) {
    row.utilization_pct = if row.slots_fetched == 0 {
        0.0
    } else {
        100.0 * row.slots_touched as f64 / row.slots_fetched as f64
    };
    row.wasted_bytes = 8 * (row.slots_fetched - row.slots_touched);
    row.wasted_bytes_per_sec = if window_cycles == 0 {
        0.0
    } else {
        row.wasted_bytes as f64 * cycles_per_second as f64 / window_cycles as f64
    };
    row.refetch_ratio = if row.slots_fetched == 0 {
        0.0
    } else {
        row.refetch_slots as f64 / row.slots_fetched as f64
    };
    let (lo, hi) = wilson95(row.slots_touched, row.slots_fetched);
    row.ci95_low = 100.0 * lo;
    row.ci95_high = 100.0 * hi;
}

/// Sorts rows by wasted bytes (name breaking ties, for cross-process determinism) and
/// marks rank stability from the wasted-byte ranges implied by each row's utilization
/// confidence interval.
pub fn rank_utilization_rows(rows: &mut [UtilizationRow]) {
    rows.sort_by(|a, b| {
        b.wasted_bytes
            .cmp(&a.wasted_bytes)
            .then_with(|| a.name.cmp(&b.name))
    });
    let intervals: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| {
            let bytes = 8.0 * r.slots_fetched as f64;
            // High utilization => low waste: the interval ends swap.
            (
                bytes * (1.0 - r.ci95_high / 100.0),
                bytes * (1.0 - r.ci95_low / 100.0),
            )
        })
        .collect();
    for (row, stable) in rows.iter_mut().zip(mark_rank_stability(&intervals)) {
        row.rank_stable = stable;
    }
}

/// Builds the utilization view from a line tally, attributing each 8-byte granule of
/// every fetched line to the type (and allocation origin) whose allocation most
/// recently covered it — the identical live-then-historical rule the other views use.
pub fn build_utilization(
    tally: &UtilizationTally,
    allocator: &SlabAllocator,
    registry: &TypeRegistry,
    line_size: u64,
    window_cycles: u64,
    cycles_per_second: u64,
) -> UtilizationProfile {
    let granules_per_line = (line_size / 8) as usize;
    // Which (type, origin core) covers each fetched granule?  One pass over the
    // allocation log in record order; later records overwrite earlier ones.
    let mut tallied: HashMap<u64, Option<(TypeId, usize)>> = HashMap::new();
    for (line, _) in tally.iter() {
        let base = line * line_size;
        for g in 0..granules_per_line {
            tallied.insert(base + 8 * g as u64, None);
        }
    }
    for r in allocator.address_set() {
        let mut g = r.addr & !7;
        let end = r.addr + r.size;
        while g < end {
            if let Some(slot) = tallied.get_mut(&g) {
                *slot = Some((r.type_id, r.alloc_core));
            }
            g += 8;
        }
    }

    #[derive(Default)]
    struct Acc {
        slots_fetched: u64,
        slots_touched: u64,
        refetch_slots: u64,
        origins: HashMap<usize, (u64, u64)>, // core -> (fetched, touched)
    }
    let mut acc: HashMap<TypeId, Acc> = HashMap::new();
    let mut resolved_slots_fetched = 0u64;
    let mut resolved_slots_touched = 0u64;
    for (line, counts) in tally.iter() {
        let base = line * line_size;
        for g in 0..granules_per_line {
            let Some(&Some((ty, core))) = tallied.get(&(base + 8 * g as u64)) else {
                continue;
            };
            let touched = counts.touched[g];
            let a = acc.entry(ty).or_default();
            a.slots_fetched += counts.fetches;
            a.slots_touched += touched;
            a.refetch_slots += counts.refetches;
            let o = a.origins.entry(core).or_default();
            o.0 += counts.fetches;
            o.1 += touched;
            resolved_slots_fetched += counts.fetches;
            resolved_slots_touched += touched;
        }
    }

    let mut rows: Vec<UtilizationRow> = acc
        .into_iter()
        .map(|(ty, a)| {
            let info = registry.info(ty);
            let mut origins: Vec<UtilizationOrigin> = a
                .origins
                .into_iter()
                .map(|(core, (fetched, touched))| UtilizationOrigin {
                    origin: AllocRecord::origin_label_for(core),
                    slots_fetched: fetched,
                    slots_touched: touched,
                    wasted_bytes: 8 * (fetched - touched),
                })
                .collect();
            origins.sort_by(|x, y| {
                y.wasted_bytes
                    .cmp(&x.wasted_bytes)
                    .then_with(|| x.origin.cmp(&y.origin))
            });
            let mut row = UtilizationRow {
                type_id: ty,
                name: info.name.clone(),
                description: info.description.clone(),
                slots_fetched: a.slots_fetched,
                slots_touched: a.slots_touched,
                refetch_slots: a.refetch_slots,
                utilization_pct: 0.0,
                wasted_bytes: 0,
                wasted_bytes_per_sec: 0.0,
                refetch_ratio: 0.0,
                ci95_low: 0.0,
                ci95_high: 0.0,
                rank_stable: false,
                origins,
            };
            finish_utilization_row(&mut row, window_cycles, cycles_per_second);
            row
        })
        .collect();
    rank_utilization_rows(&mut rows);

    UtilizationProfile {
        rows,
        total_fetches: tally.total_fetches,
        total_refetches: tally.total_refetches,
        resolved_slots_fetched,
        resolved_slots_touched,
        window_cycles,
        cycles_per_second,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::KernelTypes;
    use sim_machine::{Machine, MachineConfig};

    fn setup() -> (Machine, TypeRegistry, SlabAllocator, KernelTypes) {
        let mut m = Machine::new(MachineConfig::small_test());
        let mut reg = TypeRegistry::new();
        let kt = KernelTypes::register(&mut reg);
        let cores = m.cores();
        let alloc = SlabAllocator::new(&mut m, &mut reg, cores);
        (m, reg, alloc, kt)
    }

    #[test]
    fn attributes_granules_and_ranks_by_wasted_bytes() {
        let (mut m, reg, mut alloc, kt) = setup();
        let skb = alloc.alloc(&mut m, &reg, 0, kt.skbuff); // 256 B, line-aligned slabs
        let sock = alloc.alloc(&mut m, &reg, 1, kt.udp_sock);

        let mut t = UtilizationTally::new();
        // skbuff: two lines fetched, one granule touched each => 7/8 wasted per line.
        t.record_chunk(0, skb / 64, 0b1, true, true);
        t.record_chunk(0, skb / 64 + 1, 0b1, true, true);
        // udp_sock: one line fetched, all granules touched => nothing wasted.
        t.record_chunk(1, sock / 64, 0xff, true, true);
        t.finalize();

        let p = build_utilization(&t, &alloc, &reg, 64, 1_000, 1_000_000);
        assert_eq!(p.total_fetches, 3);
        assert_eq!(p.rows[0].name, "skbuff");
        assert_eq!(p.rows[0].slots_fetched, 16);
        assert_eq!(p.rows[0].slots_touched, 2);
        assert_eq!(p.rows[0].wasted_bytes, 112);
        assert!((p.rows[0].utilization_pct - 12.5).abs() < 1e-9);
        // bytes/s = 112 * 1e6 / 1e3
        assert!((p.rows[0].wasted_bytes_per_sec - 112_000.0).abs() < 1e-6);
        let sock_row = p.row("udp-sock").unwrap();
        assert_eq!(sock_row.wasted_bytes, 0);
        assert!((sock_row.utilization_pct - 100.0).abs() < 1e-9);
        assert_eq!(p.rank_of("skbuff"), Some(0));
        assert_eq!(p.wasted_bytes_total(), 112);
        // Origin attribution: skbuff was allocated from core 0's slab.
        assert_eq!(p.rows[0].origins.len(), 1);
        assert_eq!(p.rows[0].origins[0].origin, "cpu0");
        assert_eq!(sock_row.origins[0].origin, "cpu1");
    }

    #[test]
    fn refetch_ratio_counts_refetched_slots() {
        let (mut m, reg, mut alloc, kt) = setup();
        let skb = alloc.alloc(&mut m, &reg, 0, kt.skbuff);
        let mut t = UtilizationTally::new();
        t.record_chunk(0, skb / 64, 0b1, true, true);
        t.record_chunk(0, skb / 64, 0b1, true, true); // re-fetch
        t.finalize();
        let p = build_utilization(&t, &alloc, &reg, 64, 100, 100);
        let row = p.row("skbuff").unwrap();
        assert_eq!(row.refetch_slots, 8);
        assert!((row.refetch_ratio - 0.5).abs() < 1e-9);
        assert_eq!(p.total_refetches, 1);
    }

    #[test]
    fn unresolved_lines_count_only_in_totals() {
        let (_m, reg, alloc, _kt) = setup();
        let mut t = UtilizationTally::new();
        t.record_chunk(0, 0xdead_beef, 0b1, true, true);
        t.finalize();
        let p = build_utilization(&t, &alloc, &reg, 64, 100, 100);
        assert!(p.rows.is_empty());
        assert_eq!(p.total_fetches, 1);
        assert_eq!(p.resolved_slots_fetched, 0);
    }

    #[test]
    fn empty_tally_gives_default_profile() {
        let (_m, reg, alloc, _kt) = setup();
        let t = UtilizationTally::new();
        let p = build_utilization(&t, &alloc, &reg, 64, 0, 100);
        assert!(p.rows.is_empty());
        assert_eq!(p.overall_utilization_pct(), 0.0);
    }
}
