//! The four DProf views (§3 of the thesis), plus the line-utilization view.
//!
//! * [`data_profile`] — types ranked by their share of cache misses, with bounce flags.
//! * [`working_set`] — per-type cache footprint and the associativity-set histogram.
//! * [`miss_class`] — per-type classification into invalidation / conflict / capacity
//!   misses.
//! * [`data_flow`] — the merged graph of execution paths objects of a type take, with
//!   core-crossing edges highlighted.
//! * [`utilization`] — types ranked by the bandwidth wasted on fetched-but-untouched
//!   bytes, with per-allocation-origin attribution (beyond the thesis; after
//!   DINAMITE / cache-log-parser).

pub mod data_flow;
pub mod data_profile;
pub mod miss_class;
pub mod utilization;
pub mod working_set;

pub use data_flow::{DataFlowEdge, DataFlowGraph, DataFlowNode};
pub use data_profile::{build_data_profile, DataProfileRow};
pub use miss_class::{classify_misses, MissClass, TypeMissClassification};
pub use utilization::{
    build_utilization, finish_utilization_row, rank_utilization_rows, UtilizationOrigin,
    UtilizationProfile, UtilizationRow,
};
pub use working_set::{build_working_set, AssocSetUsage, TypeWorkingSet, WorkingSetView};
