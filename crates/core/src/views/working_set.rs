//! The working-set view (§4.2): which types occupy the cache, how many of each are live
//! at once, and how they map onto associativity sets.
//!
//! DProf generates this view by running a lightweight cache simulation over the address
//! set.  Here the equivalent is computed analytically: the address set records every
//! allocation's lifetime, so the time-weighted average footprint of each type and the
//! distribution of live objects over associativity sets follow directly.

use serde::{Deserialize, Serialize};
use sim_cache::CacheGeometry;
use sim_kernel::{AllocRecord, TypeId, TypeRegistry};
use std::collections::HashMap;

/// Per-type working-set summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TypeWorkingSet {
    /// The type.
    pub type_id: TypeId,
    /// Type name.
    pub name: String,
    /// Type description.
    pub description: String,
    /// Time-weighted average bytes of this type live during the window.
    pub avg_live_bytes: f64,
    /// Time-weighted average number of live objects.
    pub avg_live_objects: f64,
    /// Peak live bytes during the window.
    pub peak_live_bytes: u64,
}

/// One crowded associativity set and the types occupying it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AssocSetUsage {
    /// Set index in the (per-core L2) cache.
    pub set_index: usize,
    /// Distinct cache lines that mapped to this set during the window.
    pub distinct_lines: usize,
    /// Number of distinct lines contributed by each type.
    pub types: Vec<(TypeId, usize)>,
}

/// The working-set view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkingSetView {
    /// Per-type footprint, sorted by average live bytes (largest first).
    pub per_type: Vec<TypeWorkingSet>,
    /// Distinct lines that mapped to each associativity set during the window.
    pub assoc_histogram: Vec<usize>,
    /// Sets holding far more distinct lines than the average (candidate conflict sets),
    /// sorted by occupancy.
    pub conflict_sets: Vec<AssocSetUsage>,
    /// Associativity (ways) of the modelled cache.
    pub cache_ways: usize,
    /// Total bytes of the modelled cache.
    pub cache_capacity: u64,
}

impl WorkingSetView {
    /// Total average working set across all types, in bytes.
    pub fn total_avg_bytes(&self) -> f64 {
        self.per_type.iter().map(|t| t.avg_live_bytes).sum()
    }

    /// The working-set row for a given type, if present.
    pub fn for_type(&self, type_id: TypeId) -> Option<&TypeWorkingSet> {
        self.per_type.iter().find(|t| t.type_id == type_id)
    }

    /// True if the total working set exceeds the cache capacity (the precondition for
    /// capacity misses).
    pub fn exceeds_capacity(&self) -> bool {
        self.total_avg_bytes() > self.cache_capacity as f64
    }

    /// True if the type contributes lines to any flagged conflict set.
    pub fn type_in_conflict_set(&self, type_id: TypeId) -> bool {
        self.conflict_sets
            .iter()
            .any(|s| s.types.iter().any(|(t, _)| *t == type_id))
    }
}

/// Builds the working-set view from the address set over the cycle window
/// `[window_start, window_end)`, using `geometry` (typically the per-core L2) for the
/// associativity analysis.
pub fn build_working_set(
    address_set: &[AllocRecord],
    registry: &TypeRegistry,
    geometry: CacheGeometry,
    window_start: u64,
    window_end: u64,
) -> WorkingSetView {
    let window_end = window_end.max(window_start + 1);
    let window = (window_end - window_start) as f64;

    // Time-weighted average live bytes/objects per type.
    #[derive(Default)]
    struct Acc {
        byte_cycles: f64,
        object_cycles: f64,
        peak_bytes: u64,
        current_bytes: u64,
    }
    let mut acc: HashMap<TypeId, Acc> = HashMap::new();

    // Event sweep: +1 at alloc (clamped to window), -1 at free (or window end).
    let mut events: Vec<(u64, TypeId, i64, u64)> = Vec::new(); // (cycle, type, delta_objs, size)
    for r in address_set {
        let start = r.alloc_cycle.max(window_start);
        let end = r.free_cycle.unwrap_or(window_end).min(window_end);
        if end <= start || start >= window_end {
            continue;
        }
        events.push((start, r.type_id, 1, r.size));
        events.push((end, r.type_id, -1, r.size));
        let a = acc.entry(r.type_id).or_default();
        let live = (end - start) as f64;
        a.byte_cycles += live * r.size as f64;
        a.object_cycles += live;
    }
    // Peak tracking needs ordered events.
    events.sort_by_key(|e| e.0);
    for (_, ty, delta, size) in &events {
        let a = acc.entry(*ty).or_default();
        if *delta > 0 {
            a.current_bytes += size;
            a.peak_bytes = a.peak_bytes.max(a.current_bytes);
        } else {
            a.current_bytes = a.current_bytes.saturating_sub(*size);
        }
    }

    let mut per_type: Vec<TypeWorkingSet> = acc
        .iter()
        .map(|(&ty, a)| {
            let info = registry.info(ty);
            TypeWorkingSet {
                type_id: ty,
                name: info.name.clone(),
                description: info.description.clone(),
                avg_live_bytes: a.byte_cycles / window,
                avg_live_objects: a.object_cycles / window,
                peak_live_bytes: a.peak_bytes,
            }
        })
        .collect();
    // Name tie-break for cross-process determinism (trace replay byte-compares reports).
    per_type.sort_by(|a, b| {
        b.avg_live_bytes
            .partial_cmp(&a.avg_live_bytes)
            .unwrap()
            .then_with(|| a.name.cmp(&b.name))
    });

    // Associativity-set histogram over the objects live at any point in the window.
    let mut per_set_lines: Vec<HashMap<u64, TypeId>> = vec![HashMap::new(); geometry.sets];
    for r in address_set {
        let end = r.free_cycle.unwrap_or(u64::MAX);
        if end <= window_start || r.alloc_cycle >= window_end {
            continue;
        }
        let mut addr = r.addr;
        while addr < r.addr + r.size {
            let set = geometry.set_index(addr);
            per_set_lines[set].insert(geometry.line_addr(addr), r.type_id);
            addr += geometry.line_size as u64;
        }
    }
    let assoc_histogram: Vec<usize> = per_set_lines.iter().map(|m| m.len()).collect();
    let avg_lines =
        assoc_histogram.iter().sum::<usize>() as f64 / assoc_histogram.len().max(1) as f64;

    // Conflict sets: more lines than the set can hold AND much more crowded than average
    // (the thesis uses a factor of 2).
    let mut conflict_sets: Vec<AssocSetUsage> = assoc_histogram
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > geometry.ways && (n as f64) > 2.0 * avg_lines)
        .map(|(set_index, &n)| {
            let mut counts: HashMap<TypeId, usize> = HashMap::new();
            for ty in per_set_lines[set_index].values() {
                *counts.entry(*ty).or_insert(0) += 1;
            }
            let mut types: Vec<(TypeId, usize)> = counts.into_iter().collect();
            types.sort_by_key(|&(ty, n)| (std::cmp::Reverse(n), ty));
            AssocSetUsage {
                set_index,
                distinct_lines: n,
                types,
            }
        })
        .collect();
    conflict_sets.sort_by_key(|s| (std::cmp::Reverse(s.distinct_lines), s.set_index));

    WorkingSetView {
        per_type,
        assoc_histogram,
        conflict_sets,
        cache_ways: geometry.ways,
        cache_capacity: geometry.capacity() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(addr: u64, type_id: u32, size: u64, alloc: u64, free: Option<u64>) -> AllocRecord {
        AllocRecord {
            addr,
            type_id: TypeId(type_id),
            size,
            alloc_core: 0,
            alloc_cycle: alloc,
            free_core: free.map(|_| 0),
            free_cycle: free,
        }
    }

    fn registry() -> TypeRegistry {
        let mut r = TypeRegistry::new();
        r.register("a", "type a", 1024); // TypeId(0)
        r.register("b", "type b", 256); // TypeId(1)
        r
    }

    #[test]
    fn average_live_bytes_time_weighted() {
        let reg = registry();
        // One object of type a live for the whole window, one of type b for half of it.
        let recs = vec![
            record(0x1000, 0, 1024, 0, None),
            record(0x2000, 1, 256, 0, Some(500)),
        ];
        let ws = build_working_set(&recs, &reg, CacheGeometry::l2_default(), 0, 1000);
        let a = ws.for_type(TypeId(0)).unwrap();
        let b = ws.for_type(TypeId(1)).unwrap();
        assert!((a.avg_live_bytes - 1024.0).abs() < 1.0);
        assert!((b.avg_live_bytes - 128.0).abs() < 1.0);
        assert!((a.avg_live_objects - 1.0).abs() < 0.01);
        assert_eq!(ws.per_type[0].type_id, TypeId(0), "largest type first");
    }

    #[test]
    fn peak_bytes_tracked() {
        let reg = registry();
        let recs = vec![
            record(0x1000, 1, 256, 0, Some(400)),
            record(0x2000, 1, 256, 100, Some(300)),
        ];
        let ws = build_working_set(&recs, &reg, CacheGeometry::l2_default(), 0, 1000);
        assert_eq!(ws.for_type(TypeId(1)).unwrap().peak_live_bytes, 512);
    }

    #[test]
    fn conflict_sets_detected_when_one_set_is_crowded() {
        let reg = registry();
        let geom = CacheGeometry::new(64, 4, 64); // small cache: 4 ways, 64 sets
                                                  // 32 one-line objects that all map to set 0 (stride = sets * line).
        let stride = (geom.sets * geom.line_size) as u64;
        let mut recs = Vec::new();
        for i in 0..32u64 {
            recs.push(record(0x10_0000 + i * stride, 1, 64, 0, None));
        }
        // Plus a few objects spread over other sets.
        for i in 0..8u64 {
            recs.push(record(0x20_0040 + i * 64, 0, 64, 0, None));
        }
        let ws = build_working_set(&recs, &reg, geom, 0, 1000);
        assert!(
            !ws.conflict_sets.is_empty(),
            "the crowded set must be flagged"
        );
        assert_eq!(ws.conflict_sets[0].distinct_lines, 32);
        assert!(ws.type_in_conflict_set(TypeId(1)));
        assert!(!ws.type_in_conflict_set(TypeId(0)));
    }

    #[test]
    fn capacity_detection() {
        let reg = registry();
        let geom = CacheGeometry::new(64, 2, 16); // 2 KiB cache
        let recs: Vec<AllocRecord> = (0..8)
            .map(|i| record(0x1000 + i * 1024, 0, 1024, 0, None))
            .collect();
        let ws = build_working_set(&recs, &reg, geom, 0, 100);
        assert!(ws.exceeds_capacity());
        assert!(ws.total_avg_bytes() >= 8.0 * 1024.0 - 1.0);
    }

    #[test]
    fn objects_outside_window_ignored() {
        let reg = registry();
        let recs = vec![record(0x1000, 0, 1024, 2000, Some(3000))];
        let ws = build_working_set(&recs, &reg, CacheGeometry::l2_default(), 0, 1000);
        assert!(ws.for_type(TypeId(0)).is_none());
    }
}
