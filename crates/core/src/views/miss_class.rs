//! The miss-classification view (§4.3): for each data type, what kinds of misses it
//! suffers — invalidations (true/false sharing), associativity conflicts, or capacity.
//!
//! The classifier follows the thesis:
//!
//! * **Invalidations** are found by searching backwards in a path trace, from a missing
//!   access, for a write to the same cache line from a different CPU.  Sample-level
//!   evidence (accesses satisfied by a foreign cache) is used when no histories exist.
//! * **Conflict vs. capacity**: if only a few associativity sets are over-subscribed the
//!   remaining misses are conflicts; if most sets are about equally loaded the problem
//!   is capacity.  (Compulsory misses are assumed negligible, §4.3.)

use crate::path_trace::PathTrace;
use crate::sample::AccessSample;
use crate::views::working_set::WorkingSetView;
use serde::{Deserialize, Serialize};
use sim_cache::HitLevel;
use sim_kernel::{TypeId, TypeRegistry};
use std::collections::HashMap;

/// The kinds of cache misses DProf distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MissClass {
    /// Misses caused by another core's write invalidating the line (true or false
    /// sharing).
    Invalidation,
    /// Misses caused by too many active lines mapping to the same associativity set.
    Conflict,
    /// Misses caused by the working set exceeding the cache capacity.
    Capacity,
}

/// Per-type miss classification.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TypeMissClassification {
    /// The type.
    pub type_id: TypeId,
    /// Type name.
    pub name: String,
    /// Number of miss samples the classification is based on.
    pub miss_samples: u64,
    /// Estimated fraction of misses in each class (sums to 1 when `miss_samples > 0`).
    pub fractions: HashMap<MissClass, f64>,
    /// The dominant class.
    pub dominant: MissClass,
}

impl TypeMissClassification {
    /// The fraction for one class (0 if absent).
    pub fn fraction(&self, class: MissClass) -> f64 {
        self.fractions.get(&class).copied().unwrap_or(0.0)
    }
}

/// Estimates, from a type's path traces, the fraction of missing accesses that were
/// preceded (in the same trace) by a write to the same cache line from a different CPU —
/// the backward-search invalidation rule of §4.3.
fn invalidation_fraction_from_traces(traces: &[PathTrace]) -> Option<f64> {
    let mut weighted_missing = 0.0;
    let mut weighted_invalidation = 0.0;
    for t in traces {
        for (i, e) in t.entries.iter().enumerate() {
            let miss_prob =
                1.0 - e.stats.hit_probability(HitLevel::L1) - e.stats.hit_probability(HitLevel::L2);
            if miss_prob <= 0.0 || e.stats.count == 0 {
                continue;
            }
            let weight = t.frequency as f64 * miss_prob;
            weighted_missing += weight;
            let line_of = |off: u64| off / 64;
            let lines: Vec<u64> = e.offsets.iter().map(|&o| line_of(o)).collect();
            let invalidated = t.entries[..i].iter().rev().any(|prev| {
                prev.is_write
                    && prev.cpu_change_chain_differs(e)
                    && prev.offsets.iter().any(|&o| lines.contains(&line_of(o)))
            });
            if invalidated {
                weighted_invalidation += weight;
            }
        }
    }
    if weighted_missing == 0.0 {
        None
    } else {
        Some(weighted_invalidation / weighted_missing)
    }
}

impl crate::path_trace::PathTraceEntry {
    /// Heuristic: whether this entry and `other` ran on different CPUs, judged from the
    /// cpu-change flags (a change between them means different CPUs).
    fn cpu_change_chain_differs(&self, other: &crate::path_trace::PathTraceEntry) -> bool {
        // If either entry is marked as a CPU change the two accesses straddle a core
        // switch; that is the situation the backward search is looking for.
        self.cpu_change || other.cpu_change
    }
}

/// Classifies the misses of every type that appears in the samples.
pub fn classify_misses(
    samples: &[AccessSample],
    path_traces: &HashMap<TypeId, Vec<PathTrace>>,
    working_set: &WorkingSetView,
    registry: &TypeRegistry,
) -> Vec<TypeMissClassification> {
    #[derive(Default)]
    struct Acc {
        misses: u64,
        remote: u64,
    }
    let mut acc: HashMap<TypeId, Acc> = HashMap::new();
    for s in samples {
        if s.is_l1_miss() {
            let a = acc.entry(s.type_id).or_default();
            a.misses += 1;
            if s.level == HitLevel::RemoteCache {
                a.remote += 1;
            }
        }
    }

    let mut rows: Vec<TypeMissClassification> = acc
        .into_iter()
        .map(|(ty, a)| {
            // Invalidation fraction: prefer the path-trace backward search, fall back to
            // the fraction of foreign-cache fetches.
            let sample_fraction = if a.misses == 0 {
                0.0
            } else {
                a.remote as f64 / a.misses as f64
            };
            let invalidation = path_traces
                .get(&ty)
                .and_then(|t| invalidation_fraction_from_traces(t))
                .map(|f| f.max(sample_fraction))
                .unwrap_or(sample_fraction)
                .clamp(0.0, 1.0);

            // The remainder is split between conflict and capacity using the
            // associativity histogram: conflicts only if this type occupies one of the
            // flagged over-subscribed sets, capacity only if the total working set
            // exceeds the cache.
            let rest = 1.0 - invalidation;
            let (conflict, capacity) = if working_set.type_in_conflict_set(ty) {
                (rest, 0.0)
            } else if working_set.exceeds_capacity() {
                (0.0, rest)
            } else {
                // Neither condition holds: attribute the remainder to capacity pressure
                // in the smaller (L1) cache, which the L2-scale analysis cannot see.
                (0.0, rest)
            };

            // Pick the dominant class from a fixed-order list, not the HashMap: ties
            // must resolve identically across processes for trace replay.
            let ordered = [
                (MissClass::Invalidation, invalidation),
                (MissClass::Conflict, conflict),
                (MissClass::Capacity, capacity),
            ];
            let dominant = ordered
                .iter()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .map(|(k, _)| *k)
                .unwrap();
            let mut fractions = HashMap::new();
            fractions.insert(MissClass::Invalidation, invalidation);
            fractions.insert(MissClass::Conflict, conflict);
            fractions.insert(MissClass::Capacity, capacity);
            TypeMissClassification {
                type_id: ty,
                name: registry.name(ty).to_string(),
                miss_samples: a.misses,
                fractions,
                dominant,
            }
        })
        .collect();
    // Name tie-break for cross-process determinism (see build_data_profile).
    rows.sort_by(|a, b| {
        b.miss_samples
            .cmp(&a.miss_samples)
            .then_with(|| a.name.cmp(&b.name))
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::views::working_set::build_working_set;
    use sim_cache::CacheGeometry;
    use sim_kernel::AllocRecord;
    use sim_machine::FunctionId;

    fn registry() -> TypeRegistry {
        let mut r = TypeRegistry::new();
        r.register("shared", "shared structure", 64);
        r.register("big", "big buffer", 1024);
        r
    }

    fn sample(type_id: u32, level: HitLevel) -> AccessSample {
        AccessSample {
            type_id: TypeId(type_id),
            offset: 0,
            ip: FunctionId(1),
            cpu: 0,
            level,
            latency: 100,
            is_write: false,
        }
    }

    fn ws(records: &[AllocRecord], geom: CacheGeometry) -> WorkingSetView {
        build_working_set(records, &registry(), geom, 0, 1000)
    }

    #[test]
    fn remote_heavy_type_classified_as_invalidation() {
        let samples = vec![
            sample(0, HitLevel::RemoteCache),
            sample(0, HitLevel::RemoteCache),
            sample(0, HitLevel::RemoteCache),
            sample(0, HitLevel::L3),
        ];
        let view = ws(&[], CacheGeometry::l2_default());
        let rows = classify_misses(&samples, &HashMap::new(), &view, &registry());
        assert_eq!(rows[0].dominant, MissClass::Invalidation);
        assert!(rows[0].fraction(MissClass::Invalidation) >= 0.75);
    }

    #[test]
    fn capacity_dominates_when_working_set_exceeds_cache() {
        let geom = CacheGeometry::new(64, 2, 16); // 2 KiB cache
        let records: Vec<AllocRecord> = (0..8)
            .map(|i| AllocRecord {
                addr: 0x1000 + i * 1024,
                type_id: TypeId(1),
                size: 1024,
                alloc_core: 0,
                alloc_cycle: 0,
                free_core: None,
                free_cycle: None,
            })
            .collect();
        let samples = vec![
            sample(1, HitLevel::Dram),
            sample(1, HitLevel::Dram),
            sample(1, HitLevel::L3),
        ];
        let view = ws(&records, geom);
        let rows = classify_misses(&samples, &HashMap::new(), &view, &registry());
        assert_eq!(rows[0].dominant, MissClass::Capacity);
    }

    #[test]
    fn conflict_dominates_when_type_sits_in_crowded_set() {
        let geom = CacheGeometry::new(64, 4, 64);
        let stride = (geom.sets * geom.line_size) as u64;
        let records: Vec<AllocRecord> = (0..32)
            .map(|i| AllocRecord {
                addr: 0x10_0000 + i * stride,
                type_id: TypeId(0),
                size: 64,
                alloc_core: 0,
                alloc_cycle: 0,
                free_core: None,
                free_cycle: None,
            })
            .collect();
        let samples = vec![sample(0, HitLevel::Dram), sample(0, HitLevel::L3)];
        let view = ws(&records, geom);
        let rows = classify_misses(&samples, &HashMap::new(), &view, &registry());
        assert_eq!(rows[0].dominant, MissClass::Conflict);
    }

    #[test]
    fn fractions_sum_to_one() {
        let samples = vec![
            sample(0, HitLevel::RemoteCache),
            sample(0, HitLevel::Dram),
            sample(0, HitLevel::L3),
        ];
        let view = ws(&[], CacheGeometry::l2_default());
        let rows = classify_misses(&samples, &HashMap::new(), &view, &registry());
        let total: f64 = rows[0].fractions.values().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
