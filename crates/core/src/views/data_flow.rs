//! The data-flow view (§4.4, Figure 6-1): a graph summarising the execution paths
//! objects of a type take from allocation to free, with core-crossing transitions and
//! high-latency functions highlighted.
//!
//! In the memcached case study this view is what pinpoints the bug: skbuffs jump from
//! one core to another between `pfifo_fast_enqueue` and `pfifo_fast_dequeue`.

use crate::path_trace::PathTrace;
use serde::{Deserialize, Serialize};
use sim_kernel::TypeId;
use sim_machine::{FunctionId, SymbolTable};
use std::collections::HashMap;

/// A node of the data-flow graph: one function that accesses the type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataFlowNode {
    /// Instruction pointer (function).
    pub ip: FunctionId,
    /// Function name.
    pub name: String,
    /// Average access latency at this node, in cycles.
    pub avg_latency: f64,
    /// Number of samples behind the latency estimate.
    pub samples: u64,
    /// Total path frequency passing through this node.
    pub weight: u64,
}

impl DataFlowNode {
    /// A node is "hot" (drawn dark in Figure 6-1) if its average access latency exceeds
    /// the given threshold.
    pub fn is_hot(&self, threshold_cycles: f64) -> bool {
        self.avg_latency >= threshold_cycles && self.samples > 0
    }
}

/// An edge of the data-flow graph: a transition between two consecutive accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataFlowEdge {
    /// Index of the source node.
    pub from: usize,
    /// Index of the destination node.
    pub to: usize,
    /// How many object histories took this transition.
    pub count: u64,
    /// Whether the transition crosses cores (drawn bold in Figure 6-1).
    pub cpu_change: bool,
}

/// The merged data-flow graph for one type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataFlowGraph {
    /// The type this graph describes.
    pub type_id: TypeId,
    /// Nodes (functions).
    pub nodes: Vec<DataFlowNode>,
    /// Edges (transitions), including their core-crossing flags.
    pub edges: Vec<DataFlowEdge>,
}

impl DataFlowGraph {
    /// Builds the graph by merging all of a type's path traces: common program-counter
    /// steps become shared nodes, consecutive steps become edges.
    pub fn build(type_id: TypeId, traces: &[PathTrace], symbols: &SymbolTable) -> Self {
        let mut node_index: HashMap<FunctionId, usize> = HashMap::new();
        let mut nodes: Vec<DataFlowNode> = Vec::new();
        let mut edge_map: HashMap<(usize, usize), DataFlowEdge> = HashMap::new();

        let mut node_latency: Vec<(f64, u64)> = Vec::new(); // (total latency-weight, samples)

        for t in traces.iter().filter(|t| t.type_id == type_id) {
            let mut prev: Option<usize> = None;
            for e in &t.entries {
                let idx = *node_index.entry(e.ip).or_insert_with(|| {
                    nodes.push(DataFlowNode {
                        ip: e.ip,
                        name: symbols.name(e.ip).to_string(),
                        avg_latency: 0.0,
                        samples: 0,
                        weight: 0,
                    });
                    node_latency.push((0.0, 0));
                    nodes.len() - 1
                });
                nodes[idx].weight += t.frequency;
                node_latency[idx].0 += e.stats.avg_latency() * e.stats.count as f64;
                node_latency[idx].1 += e.stats.count;
                if let Some(p) = prev {
                    let edge = edge_map.entry((p, idx)).or_insert(DataFlowEdge {
                        from: p,
                        to: idx,
                        count: 0,
                        cpu_change: false,
                    });
                    edge.count += t.frequency;
                    edge.cpu_change |= e.cpu_change;
                }
                prev = Some(idx);
            }
        }
        for (idx, node) in nodes.iter_mut().enumerate() {
            let (total, count) = node_latency[idx];
            node.samples = count;
            node.avg_latency = if count == 0 {
                0.0
            } else {
                total / count as f64
            };
        }
        let mut edges: Vec<DataFlowEdge> = edge_map.into_values().collect();
        edges.sort_by_key(|e| (e.from, e.to));
        DataFlowGraph {
            type_id,
            nodes,
            edges,
        }
    }

    /// The edges that cross cores, most frequent first — the first place a programmer
    /// should look for true/false sharing.
    pub fn cpu_crossing_edges(&self) -> Vec<&DataFlowEdge> {
        let mut v: Vec<&DataFlowEdge> = self.edges.iter().filter(|e| e.cpu_change).collect();
        v.sort_by_key(|e| std::cmp::Reverse(e.count));
        v
    }

    /// Finds the node index for a function name, if present.
    pub fn node_by_name(&self, name: &str) -> Option<usize> {
        self.nodes.iter().position(|n| n.name == name)
    }

    /// True if the graph contains a core-crossing transition between the two named
    /// functions (in that order).
    pub fn has_crossing_between(&self, from: &str, to: &str) -> bool {
        let (Some(f), Some(t)) = (self.node_by_name(from), self.node_by_name(to)) else {
            return false;
        };
        self.edges
            .iter()
            .any(|e| e.from == f && e.to == t && e.cpu_change)
    }

    /// Renders the graph in Graphviz DOT format: bold edges are core transitions, dark
    /// nodes have high access latency — the same visual vocabulary as Figure 6-1.
    pub fn to_dot(&self, hot_threshold_cycles: f64) -> String {
        let mut out = String::from("digraph data_flow {\n  rankdir=TB;\n  node [shape=box];\n");
        for (i, n) in self.nodes.iter().enumerate() {
            let style = if n.is_hot(hot_threshold_cycles) {
                ", style=filled, fillcolor=gray55, fontcolor=white"
            } else {
                ""
            };
            out.push_str(&format!(
                "  n{} [label=\"{}\\navg {:.0} cyc\"{}];\n",
                i, n.name, n.avg_latency, style
            ));
        }
        for e in &self.edges {
            let style = if e.cpu_change {
                ", penwidth=3, color=black"
            } else {
                ""
            };
            out.push_str(&format!(
                "  n{} -> n{} [label=\"x{}\"{}];\n",
                e.from, e.to, e.count, style
            ));
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path_trace::PathTraceEntry;
    use crate::sample::SampleStats;

    fn entry(ip: u32, cpu_change: bool, latency: u64, count: u64) -> PathTraceEntry {
        let stats = SampleStats {
            count,
            total_latency: latency * count,
            ..Default::default()
        };
        PathTraceEntry {
            ip: FunctionId(ip),
            cpu_change,
            offsets: vec![0],
            is_write: false,
            avg_timestamp: 0.0,
            stats,
        }
    }

    fn symbols() -> SymbolTable {
        let mut s = SymbolTable::new();
        s.intern("__alloc_skb"); // 0
        s.intern("pfifo_fast_enqueue"); // 1
        s.intern("pfifo_fast_dequeue"); // 2
        s.intern("kfree"); // 3
        s
    }

    #[test]
    fn merges_shared_prefixes_into_one_graph() {
        let traces = vec![
            PathTrace {
                type_id: TypeId(1),
                entries: vec![
                    entry(0, false, 3, 1),
                    entry(1, false, 3, 1),
                    entry(2, true, 200, 4),
                    entry(3, false, 15, 1),
                ],
                frequency: 10,
                avg_lifetime: 100.0,
            },
            PathTrace {
                type_id: TypeId(1),
                entries: vec![entry(0, false, 3, 1), entry(3, false, 15, 1)],
                frequency: 3,
                avg_lifetime: 50.0,
            },
        ];
        let g = DataFlowGraph::build(TypeId(1), &traces, &symbols());
        assert_eq!(
            g.nodes.len(),
            4,
            "shared functions must be merged into single nodes"
        );
        let alloc = g.node_by_name("__alloc_skb").unwrap();
        assert_eq!(g.nodes[alloc].weight, 13);
        // The dequeue node was reached over a CPU change and has high latency.
        assert!(g.has_crossing_between("pfifo_fast_enqueue", "pfifo_fast_dequeue"));
        let deq = g.node_by_name("pfifo_fast_dequeue").unwrap();
        assert!(g.nodes[deq].is_hot(100.0));
        assert_eq!(g.cpu_crossing_edges().len(), 1);
    }

    #[test]
    fn dot_output_marks_crossings_and_hot_nodes() {
        let traces = vec![PathTrace {
            type_id: TypeId(1),
            entries: vec![entry(0, false, 3, 1), entry(2, true, 200, 4)],
            frequency: 5,
            avg_lifetime: 10.0,
        }];
        let g = DataFlowGraph::build(TypeId(1), &traces, &symbols());
        let dot = g.to_dot(100.0);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("penwidth=3"), "core transition must be bold");
        assert!(dot.contains("fillcolor=gray55"), "hot node must be dark");
        assert!(dot.contains("pfifo_fast_dequeue"));
    }

    #[test]
    fn empty_traces_give_empty_graph() {
        let g = DataFlowGraph::build(TypeId(1), &[], &symbols());
        assert!(g.nodes.is_empty());
        assert!(g.edges.is_empty());
        assert!(!g.has_crossing_between("a", "b"));
    }
}
