//! The data-profile view (§3, §4.1): data types ranked by their share of cache misses,
//! with a flag showing whether objects of the type bounce between cores.
//!
//! This is the highest-level view and the one shown in Tables 6.1, 6.4 and 6.5.

use crate::path_trace::PathTrace;
use crate::sample::AccessSample;
use crate::stats::{mark_rank_stability, wilson95};
use crate::views::working_set::WorkingSetView;
use serde::{Deserialize, Serialize};
use sim_cache::HitLevel;
use sim_kernel::{TypeId, TypeRegistry};
use std::collections::HashMap;

/// One row of the data profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataProfileRow {
    /// The type.
    pub type_id: TypeId,
    /// Type name (e.g. `"size-1024"`).
    pub name: String,
    /// Human-readable description (e.g. `"packet payload"`).
    pub description: String,
    /// Working-set size in bytes (from the working-set view), if known.
    pub working_set_bytes: f64,
    /// Percentage of all L1 misses attributed to this type.
    pub pct_of_l1_misses: f64,
    /// Percentage of all L1-miss *latency cycles* attributed to this type (a useful
    /// secondary ranking when miss costs differ widely).
    pub pct_of_miss_cycles: f64,
    /// Whether objects of this type bounce between cores.
    pub bounce: bool,
    /// Number of samples observed for this type.
    pub samples: u64,
    /// L1-miss samples observed for this type (the numerator of
    /// [`Self::pct_of_l1_misses`]; carried so merged reports can re-derive exact
    /// confidence intervals from pooled counts).
    pub l1_miss_samples: u64,
    /// Lower bound of the 95% (Wilson) confidence interval on the miss share,
    /// percent.
    pub ci95_low: f64,
    /// Upper bound of the 95% confidence interval on the miss share, percent.
    pub ci95_high: f64,
    /// True when the row's rank is statistically firm: its share interval does not
    /// overlap either ranked neighbour's, so sampling noise alone cannot swap them.
    pub rank_stable: bool,
}

/// Builds the data profile from access samples, path traces (for the bounce flag) and
/// the working-set view (for the size column), sorted by miss share.
pub fn build_data_profile(
    samples: &[AccessSample],
    path_traces: &HashMap<TypeId, Vec<PathTrace>>,
    working_set: &WorkingSetView,
    registry: &TypeRegistry,
) -> Vec<DataProfileRow> {
    #[derive(Default)]
    struct Acc {
        samples: u64,
        l1_misses: u64,
        miss_cycles: u64,
        remote_seen: bool,
    }
    let mut acc: HashMap<TypeId, Acc> = HashMap::new();
    let mut total_l1_misses = 0u64;
    let mut total_miss_cycles = 0u64;

    for s in samples {
        let a = acc.entry(s.type_id).or_default();
        a.samples += 1;
        if s.is_l1_miss() {
            a.l1_misses += 1;
            a.miss_cycles += s.latency;
            total_l1_misses += 1;
            total_miss_cycles += s.latency;
        }
        if s.level == HitLevel::RemoteCache {
            a.remote_seen = true;
        }
    }

    let mut rows: Vec<DataProfileRow> = acc
        .into_iter()
        .map(|(ty, a)| {
            let info = registry.info(ty);
            // The bounce flag is set if any path trace for the type sees a CPU change
            // (§4.1).  When no histories were collected for the type, fall back to the
            // sample-level evidence of foreign-cache fetches.
            let bounce = match path_traces.get(&ty) {
                Some(traces) if !traces.is_empty() => traces.iter().any(|t| t.has_cpu_change()),
                _ => a.remote_seen,
            };
            let (ci_lo, ci_hi) = wilson95(a.l1_misses, total_l1_misses);
            DataProfileRow {
                type_id: ty,
                name: info.name.clone(),
                description: info.description.clone(),
                working_set_bytes: working_set
                    .for_type(ty)
                    .map(|w| w.avg_live_bytes)
                    .unwrap_or(0.0),
                pct_of_l1_misses: if total_l1_misses == 0 {
                    0.0
                } else {
                    100.0 * a.l1_misses as f64 / total_l1_misses as f64
                },
                pct_of_miss_cycles: if total_miss_cycles == 0 {
                    0.0
                } else {
                    100.0 * a.miss_cycles as f64 / total_miss_cycles as f64
                },
                bounce,
                samples: a.samples,
                l1_miss_samples: a.l1_misses,
                ci95_low: 100.0 * ci_lo,
                ci95_high: 100.0 * ci_hi,
                rank_stable: false, // marked after ranking, below
            }
        })
        .collect();
    // Tie-break on the type name: equal miss shares must order identically across
    // processes (trace replay compares reports byte-for-byte), and HashMap iteration
    // order is not stable between runs.
    rows.sort_by(|a, b| {
        b.pct_of_l1_misses
            .partial_cmp(&a.pct_of_l1_misses)
            .unwrap()
            .then_with(|| a.name.cmp(&b.name))
    });
    let intervals: Vec<(f64, f64)> = rows.iter().map(|r| (r.ci95_low, r.ci95_high)).collect();
    for (row, stable) in rows.iter_mut().zip(mark_rank_stability(&intervals)) {
        row.rank_stable = stable;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cache::CacheGeometry;
    use sim_machine::FunctionId;

    fn sample(type_id: u32, level: HitLevel, latency: u64) -> AccessSample {
        AccessSample {
            type_id: TypeId(type_id),
            offset: 0,
            ip: FunctionId(1),
            cpu: 0,
            level,
            latency,
            is_write: false,
        }
    }

    fn empty_working_set() -> WorkingSetView {
        build_working_set_empty()
    }

    fn build_working_set_empty() -> WorkingSetView {
        crate::views::working_set::build_working_set(
            &[],
            &registry(),
            CacheGeometry::l2_default(),
            0,
            1,
        )
    }

    fn registry() -> TypeRegistry {
        let mut r = TypeRegistry::new();
        r.register("size-1024", "packet payload", 1024);
        r.register("skbuff", "packet bookkeeping structure", 256);
        r
    }

    #[test]
    fn ranks_types_by_miss_share() {
        let reg = registry();
        let samples = vec![
            // Type 0: three L1 misses (one remote).
            sample(0, HitLevel::L2, 15),
            sample(0, HitLevel::Dram, 250),
            sample(0, HitLevel::RemoteCache, 200),
            // Type 1: one L1 miss, two hits.
            sample(1, HitLevel::L1, 3),
            sample(1, HitLevel::L1, 3),
            sample(1, HitLevel::L2, 15),
        ];
        let rows = build_data_profile(&samples, &HashMap::new(), &empty_working_set(), &reg);
        assert_eq!(rows[0].type_id, TypeId(0));
        assert!((rows[0].pct_of_l1_misses - 75.0).abs() < 1e-9);
        assert!((rows[1].pct_of_l1_misses - 25.0).abs() < 1e-9);
        assert!(rows[0].bounce, "remote-cache samples imply bouncing");
        assert!(!rows[1].bounce);
        assert!(rows[0].pct_of_miss_cycles > rows[1].pct_of_miss_cycles);
    }

    #[test]
    fn path_traces_override_bounce_flag() {
        let reg = registry();
        let samples = vec![sample(0, HitLevel::L2, 15)];
        // A path trace with no CPU change: bounce must be false even though we have no
        // remote samples either way.
        let mut traces = HashMap::new();
        traces.insert(
            TypeId(0),
            vec![PathTrace {
                type_id: TypeId(0),
                entries: vec![],
                frequency: 1,
                avg_lifetime: 0.0,
            }],
        );
        let rows = build_data_profile(&samples, &traces, &empty_working_set(), &reg);
        assert!(!rows[0].bounce);
    }

    #[test]
    fn empty_samples_give_empty_profile() {
        let reg = registry();
        let rows = build_data_profile(&[], &HashMap::new(), &empty_working_set(), &reg);
        assert!(rows.is_empty());
    }

    #[test]
    fn confidence_intervals_bracket_the_share_and_mark_stability() {
        let reg = registry();
        // Type 0: 30 of 31 misses; type 1: 1 of 31 — a separation wide enough that
        // the intervals cannot overlap, so both ranks are stable.
        let mut samples: Vec<AccessSample> =
            (0..30).map(|_| sample(0, HitLevel::Dram, 250)).collect();
        samples.push(sample(1, HitLevel::L2, 15));
        let rows = build_data_profile(&samples, &HashMap::new(), &empty_working_set(), &reg);
        for r in &rows {
            assert!(
                r.ci95_low <= r.pct_of_l1_misses + 1e-9 && r.pct_of_l1_misses <= r.ci95_high + 1e-9,
                "{}: CI [{:.2}, {:.2}] must bracket the share {:.2}",
                r.name,
                r.ci95_low,
                r.ci95_high,
                r.pct_of_l1_misses
            );
            assert_eq!(
                r.l1_miss_samples,
                if r.type_id == TypeId(0) { 30 } else { 1 }
            );
        }
        assert!(
            rows.iter().all(|r| r.rank_stable),
            "clear separation => stable ranks"
        );

        // A near-tie (2 vs 1 misses) has overlapping intervals: neither rank is firm.
        let samples = vec![
            sample(0, HitLevel::Dram, 250),
            sample(0, HitLevel::Dram, 250),
            sample(1, HitLevel::L2, 15),
        ];
        let rows = build_data_profile(&samples, &HashMap::new(), &empty_working_set(), &reg);
        assert!(
            rows.iter().all(|r| !r.rank_stable),
            "near-tie => unstable ranks"
        );
    }

    #[test]
    fn percentages_sum_to_one_hundred() {
        let reg = registry();
        let samples = vec![
            sample(0, HitLevel::L2, 15),
            sample(0, HitLevel::L3, 45),
            sample(1, HitLevel::Dram, 250),
            sample(1, HitLevel::L1, 3),
        ];
        let rows = build_data_profile(&samples, &HashMap::new(), &empty_working_set(), &reg);
        let total: f64 = rows.iter().map(|r| r.pct_of_l1_misses).sum();
        assert!((total - 100.0).abs() < 1e-6);
    }
}
