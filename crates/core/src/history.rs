//! Object access histories (§5.3, Table 5.2) and their collection through the debug
//! registers.
//!
//! An object access history records every instruction that touched one offset of one
//! object between its allocation and its free.  The hardware constraint — four debug
//! registers, eight bytes each — forces DProf to cover a data type a few bytes at a
//! time, across many objects ("history sets"), and optionally to monitor *pairs* of
//! offsets in the same object so that accesses to different members can be ordered
//! (pairwise sampling, §6.4).

use serde::{Deserialize, Serialize};
use sim_cache::CoreId;
use sim_kernel::{KernelState, TypeId};
use sim_machine::{FunctionId, Machine, WatchpointHit, MAX_WATCH_LEN};

/// One element of an object access history (Table 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistoryElement {
    /// Offset within the data type that was accessed.
    pub offset: u64,
    /// Instruction address responsible for the access.
    pub ip: FunctionId,
    /// The CPU that executed the instruction.
    pub cpu: CoreId,
    /// Time of the access, in cycles from the object's allocation.
    pub time: u64,
    /// Whether the access was a write (needed by the invalidation classifier).
    pub is_write: bool,
}

/// The complete trace of accesses to (part of) one object, from allocation to free.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjectAccessHistory {
    /// The object's data type.
    pub type_id: TypeId,
    /// The offsets that were being watched when this history was collected.
    pub watched_offsets: Vec<u64>,
    /// Core that allocated the object.
    pub alloc_core: CoreId,
    /// Recorded accesses, ordered by time.
    pub elements: Vec<HistoryElement>,
    /// Object lifetime in cycles (allocation to free), if the free was observed.
    pub lifetime: Option<u64>,
}

impl ObjectAccessHistory {
    /// The execution path of this history: the sequence of `(ip, cpu_changed)` pairs,
    /// which is how the thesis defines equality of paths (§4, Table 4.1).
    pub fn execution_path(&self) -> Vec<(FunctionId, bool)> {
        let mut path = Vec::with_capacity(self.elements.len());
        let mut prev_cpu = self.alloc_core;
        for e in &self.elements {
            path.push((e.ip, e.cpu != prev_cpu));
            prev_cpu = e.cpu;
        }
        path
    }

    /// True if any access happened on a core other than the allocating core or the
    /// previous access's core (the "bounce" flag of the data-profile view).
    pub fn bounces(&self) -> bool {
        self.execution_path().iter().any(|(_, changed)| *changed)
    }
}

/// How object access histories are collected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollectionMode {
    /// One watchpoint per object: each history covers a single offset.
    SingleOffset,
    /// Two watchpoints per object covering a pair of offsets, so accesses to different
    /// members can be interleaved/ordered (quadratically more histories are needed to
    /// cover a type, Table 6.10).
    Pairwise,
}

/// Statistics describing one history-collection run, used for the overhead tables
/// (6.7–6.10).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CollectionStats {
    /// Histories successfully collected.
    pub histories: u64,
    /// Total history elements recorded.
    pub elements: u64,
    /// Cycles of application time elapsed during collection (max core clock delta).
    pub elapsed_cycles: u64,
    /// Cycles spent in debug-register interrupts.
    pub interrupt_cycles: u64,
    /// Cycles spent reserving objects with the memory subsystem.
    pub memory_cycles: u64,
    /// Cycles spent broadcasting debug-register setup to all cores.
    pub communication_cycles: u64,
    /// History sets completed.
    pub sets_completed: u64,
}

impl CollectionStats {
    /// Total profiling overhead cycles.
    pub fn overhead_cycles(&self) -> u64 {
        self.interrupt_cycles + self.memory_cycles + self.communication_cycles
    }

    /// Profiling overhead as a fraction of elapsed application cycles.
    pub fn overhead_fraction(&self) -> f64 {
        if self.elapsed_cycles == 0 {
            0.0
        } else {
            self.overhead_cycles() as f64 / self.elapsed_cycles as f64
        }
    }

    /// Collection time in seconds for a machine running at `cycles_per_second`.
    pub fn collection_seconds(&self, cycles_per_second: u64) -> f64 {
        self.elapsed_cycles as f64 / cycles_per_second as f64
    }

    /// Histories collected per second.
    pub fn histories_per_second(&self, cycles_per_second: u64) -> f64 {
        let secs = self.collection_seconds(cycles_per_second);
        if secs == 0.0 {
            0.0
        } else {
            self.histories as f64 / secs
        }
    }

    /// Elements recorded per second.
    pub fn elements_per_second(&self, cycles_per_second: u64) -> f64 {
        let secs = self.collection_seconds(cycles_per_second);
        if secs == 0.0 {
            0.0
        } else {
            self.elements as f64 / secs
        }
    }

    /// Average elements per history.
    pub fn elements_per_history(&self) -> f64 {
        if self.histories == 0 {
            0.0
        } else {
            self.elements as f64 / self.histories as f64
        }
    }

    /// Overhead breakdown `(interrupt, memory, communication)` fractions of the total
    /// overhead (Table 6.9).
    pub fn overhead_breakdown(&self) -> (f64, f64, f64) {
        let t = self.overhead_cycles() as f64;
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.interrupt_cycles as f64 / t,
            self.memory_cycles as f64 / t,
            self.communication_cycles as f64 / t,
        )
    }
}

/// Configuration of history collection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HistoryConfig {
    /// How many history sets to collect (each set covers every watched offset once).
    pub history_sets: usize,
    /// Bytes covered by one watchpoint (1..=8).
    pub watch_granularity: u64,
    /// Single-offset or pairwise collection.
    pub mode: CollectionMode,
    /// Maximum workload rounds to wait for an object to be allocated or freed before
    /// giving up on it.
    pub max_rounds_per_object: usize,
    /// If set, restrict watching to these offsets (the thesis notes DProf profiles just
    /// the most-used members to keep pairwise collection tractable).
    pub offsets_of_interest: Option<Vec<u64>>,
    /// Upper bound (exclusive) on the random number of matching allocations skipped
    /// before arming, so the profiled objects are a random subset rather than always the
    /// first allocation of every round.  `1` disables randomisation.
    pub sampling_skip_max: u32,
    /// Seed for the deterministic skip-count sequence.
    pub seed: u64,
}

impl Default for HistoryConfig {
    fn default() -> Self {
        HistoryConfig {
            history_sets: 40,
            watch_granularity: MAX_WATCH_LEN,
            mode: CollectionMode::SingleOffset,
            max_rounds_per_object: 60,
            offsets_of_interest: None,
            sampling_skip_max: 12,
            seed: 0xd90f,
        }
    }
}

/// Collects object access histories for `type_id` by repeatedly reserving a freshly
/// allocated object, watching one offset (or a pair of offsets) until the object is
/// freed, and recording every hit.
///
/// `step` advances the workload by one round; the collector interleaves profiling with
/// the running workload exactly as the real tool does.
pub fn collect_histories<F>(
    machine: &mut Machine,
    kernel: &mut KernelState,
    type_id: TypeId,
    config: &HistoryConfig,
    mut step: F,
) -> (Vec<ObjectAccessHistory>, CollectionStats)
where
    F: FnMut(&mut Machine, &mut KernelState),
{
    let type_size = kernel.types.size(type_id);
    let gran = config.watch_granularity.clamp(1, MAX_WATCH_LEN);
    let offsets: Vec<u64> = match &config.offsets_of_interest {
        Some(offs) => offs.clone(),
        None => (0..type_size).step_by(gran as usize).collect(),
    };

    // Build the list of watch targets for one "history set".
    let targets: Vec<Vec<u64>> = match config.mode {
        CollectionMode::SingleOffset => offsets.iter().map(|&o| vec![o]).collect(),
        CollectionMode::Pairwise => {
            let mut pairs = Vec::new();
            for (i, &a) in offsets.iter().enumerate() {
                for &b in &offsets[i + 1..] {
                    pairs.push(vec![a, b]);
                }
            }
            if pairs.is_empty() {
                offsets.iter().map(|&o| vec![o]).collect()
            } else {
                pairs
            }
        }
    };

    let mut histories = Vec::new();
    let mut stats = CollectionStats::default();
    let start_cycles = machine.max_clock();
    let start_overhead = machine.watchpoints.overhead;
    // Deterministic xorshift sequence for the per-object sampling skip.
    let mut rng_state = config.seed | 1;
    let mut next_skip = |max: u32| -> u32 {
        if max <= 1 {
            return 0;
        }
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        (rng_state % max as u64) as u32
    };

    for _set in 0..config.history_sets {
        for watch_offsets in &targets {
            let skip = next_skip(config.sampling_skip_max);
            if let Some(h) = collect_one_history(
                machine,
                kernel,
                type_id,
                watch_offsets,
                gran,
                type_size,
                config.max_rounds_per_object,
                skip,
                &mut step,
            ) {
                stats.histories += 1;
                stats.elements += h.elements.len() as u64;
                histories.push(h);
            }
        }
        stats.sets_completed += 1;
    }

    stats.elapsed_cycles = machine.max_clock().saturating_sub(start_cycles);
    let overhead = machine.watchpoints.overhead;
    stats.interrupt_cycles = overhead.interrupt_cycles - start_overhead.interrupt_cycles;
    stats.memory_cycles = overhead.memory_cycles - start_overhead.memory_cycles;
    stats.communication_cycles =
        overhead.communication_cycles - start_overhead.communication_cycles;
    (histories, stats)
}

/// Reserves the next allocation of `type_id` (the allocator arms the watchpoints the
/// moment the object is allocated), runs the workload until the object is freed, and
/// returns its history.
#[allow(clippy::too_many_arguments)]
fn collect_one_history<F>(
    machine: &mut Machine,
    kernel: &mut KernelState,
    type_id: TypeId,
    watch_offsets: &[u64],
    gran: u64,
    type_size: u64,
    max_rounds: usize,
    skip: u32,
    step: &mut F,
) -> Option<ObjectAccessHistory>
where
    F: FnMut(&mut Machine, &mut KernelState),
{
    // Discard any stale hits from previous objects and file the request.
    machine.watchpoints.drain();
    kernel.allocator.profile_hook.finished = None;
    kernel.allocator.profile_hook.armed = None;
    kernel.allocator.profile_hook.request = Some(sim_kernel::ProfileRequest {
        type_id,
        offsets: watch_offsets.to_vec(),
        granularity: gran,
        skip,
    });

    // Run until the watched object has been allocated *and* freed (the allocator moves
    // it to `finished`), giving up after the round budget.
    let mut rounds = 0;
    let object = loop {
        if let Some(done) = kernel.allocator.profile_hook.finished.take() {
            break done;
        }
        if rounds >= max_rounds {
            // Either no object of the type was allocated, or it is still alive.  Salvage
            // a partial history if one is armed; otherwise give up.
            kernel.allocator.profile_hook.request = None;
            match kernel.allocator.profile_hook.armed.take() {
                Some(armed) => {
                    for &id in &armed.watchpoints {
                        machine.disarm_watchpoint(id);
                    }
                    break armed;
                }
                None => return None,
            }
        }
        step(machine, kernel);
        rounds += 1;
    };

    // The watchpoints were armed for this object only, so every hit belongs to it; the
    // drain order is the true global order of the accesses (the simulation is
    // sequential), which sidesteps the skew between per-core cycle counters.
    let hits: Vec<WatchpointHit> = machine.watchpoints.drain();
    let base = object.base;
    let alloc_cycle = object.alloc_cycle;
    let elements: Vec<HistoryElement> = hits
        .into_iter()
        .filter(|h| h.addr >= base && h.addr < base + type_size)
        .map(|h| HistoryElement {
            offset: h.addr - base,
            ip: h.ip,
            cpu: h.core,
            time: h.cycle.saturating_sub(alloc_cycle),
            is_write: h.kind.is_write(),
        })
        .collect();

    Some(ObjectAccessHistory {
        type_id,
        watched_offsets: watch_offsets.to_vec(),
        alloc_core: object.alloc_core,
        elements,
        lifetime: object.free_cycle.map(|f| f.saturating_sub(alloc_cycle)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::KernelConfig;
    use sim_machine::MachineConfig;

    /// A tiny synthetic workload: every round allocates an skbuff on core 0, writes two
    /// of its fields (one from core 0, one from core 1), and frees it on core 1.
    fn bouncing_step(m: &mut Machine, k: &mut KernelState) {
        let skb = k.alloc_skb(m, 0, 100, false);
        m.write(0, k.syms.skb_put, skb.skb_addr + 24, 4);
        m.read(1, k.syms.dev_hard_start_xmit, skb.skb_addr + 24, 4);
        k.kfree_skb(m, 1, skb, k.syms.kfree_skb);
    }

    fn setup() -> (Machine, KernelState) {
        let mut m = Machine::new(MachineConfig::with_cores(2));
        let k = KernelState::new(
            &mut m,
            KernelConfig {
                cores: 2,
                workers_per_core: 1,
                ..Default::default()
            },
        );
        (m, k)
    }

    #[test]
    fn collects_histories_with_cpu_changes() {
        let (mut m, mut k) = setup();
        let cfg = HistoryConfig {
            history_sets: 3,
            offsets_of_interest: Some(vec![24]),
            ..Default::default()
        };
        let skbuff = k.kt.skbuff;
        let (histories, stats) = collect_histories(&mut m, &mut k, skbuff, &cfg, bouncing_step);
        assert!(!histories.is_empty(), "expected at least one history");
        assert_eq!(stats.histories as usize, histories.len());
        assert!(stats.elements > 0);
        // The offset-24 field is written on core 0 and read on core 1: the history must
        // show a CPU change.
        assert!(
            histories.iter().any(|h| h.bounces()),
            "expected a bouncing history"
        );
        // All recorded offsets are within the watched granule.
        for h in &histories {
            for e in &h.elements {
                assert!(e.offset >= 24 && e.offset < 32);
            }
        }
    }

    #[test]
    fn lifetime_recorded_when_object_freed() {
        let (mut m, mut k) = setup();
        let cfg = HistoryConfig {
            history_sets: 1,
            offsets_of_interest: Some(vec![0]),
            ..Default::default()
        };
        let skbuff = k.kt.skbuff;
        let (histories, _) = collect_histories(&mut m, &mut k, skbuff, &cfg, bouncing_step);
        assert!(histories.iter().all(|h| h.lifetime.is_some()));
    }

    #[test]
    fn overhead_is_accounted() {
        let (mut m, mut k) = setup();
        let cfg = HistoryConfig {
            history_sets: 2,
            offsets_of_interest: Some(vec![24]),
            ..Default::default()
        };
        let skbuff = k.kt.skbuff;
        let (_h, stats) = collect_histories(&mut m, &mut k, skbuff, &cfg, bouncing_step);
        assert!(
            stats.communication_cycles > 0,
            "arming must charge the broadcast cost"
        );
        assert!(stats.memory_cycles > 0);
        assert!(stats.overhead_fraction() > 0.0);
        let (i, mem, c) = stats.overhead_breakdown();
        assert!((i + mem + c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pairwise_mode_watches_two_offsets() {
        let (mut m, mut k) = setup();
        let cfg = HistoryConfig {
            history_sets: 1,
            mode: CollectionMode::Pairwise,
            offsets_of_interest: Some(vec![24, 0]),
            ..Default::default()
        };
        let skbuff = k.kt.skbuff;
        let (histories, _) = collect_histories(&mut m, &mut k, skbuff, &cfg, bouncing_step);
        assert!(histories.iter().any(|h| h.watched_offsets.len() == 2));
    }

    #[test]
    fn execution_path_marks_cpu_changes() {
        let h = ObjectAccessHistory {
            type_id: TypeId(0),
            watched_offsets: vec![0],
            alloc_core: 0,
            elements: vec![
                HistoryElement {
                    offset: 0,
                    ip: FunctionId(1),
                    cpu: 0,
                    time: 1,
                    is_write: true,
                },
                HistoryElement {
                    offset: 0,
                    ip: FunctionId(2),
                    cpu: 1,
                    time: 2,
                    is_write: false,
                },
                HistoryElement {
                    offset: 0,
                    ip: FunctionId(3),
                    cpu: 1,
                    time: 3,
                    is_write: false,
                },
            ],
            lifetime: Some(10),
        };
        let path = h.execution_path();
        assert_eq!(
            path,
            vec![
                (FunctionId(1), false),
                (FunctionId(2), true),
                (FunctionId(3), false)
            ]
        );
        assert!(h.bounces());
    }
}
