//! Path traces (§4, Table 4.1): the merged, statistics-annotated life histories of a
//! data type along each execution path it takes.
//!
//! A path trace is built by combining all object access histories of a type that follow
//! the same execution path (same sequence of instruction pointers and CPU-change flags),
//! then augmenting every entry with the cache statistics gathered by the access samples
//! for the same `(type, offset, ip)`.

use crate::history::ObjectAccessHistory;
use crate::sample::{
    aggregate_samples, aggregate_samples_by_ip, AccessSample, SampleKey, SampleStats,
};
use serde::{Deserialize, Serialize};
use sim_kernel::TypeId;
use sim_machine::FunctionId;
use std::collections::HashMap;

/// One row of a path trace (one program-counter step, Table 4.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathTraceEntry {
    /// Instruction pointer.
    pub ip: FunctionId,
    /// Whether this instruction ran on a different CPU than the previous one.
    pub cpu_change: bool,
    /// Offsets into the data structure accessed at this step (merged across histories).
    pub offsets: Vec<u64>,
    /// Whether any of the merged accesses was a write.
    pub is_write: bool,
    /// Average time since allocation, in cycles.
    pub avg_timestamp: f64,
    /// Cache statistics from the access samples for this `(type, ip)` combination.
    pub stats: SampleStats,
}

/// A path trace: one execution path of one data type, with per-step statistics and the
/// number of times the path was observed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathTrace {
    /// The data type.
    pub type_id: TypeId,
    /// The steps of the path, in order.
    pub entries: Vec<PathTraceEntry>,
    /// How many object access histories followed this path.
    pub frequency: u64,
    /// Average object lifetime along this path, in cycles.
    pub avg_lifetime: f64,
}

impl PathTrace {
    /// The execution-path key of this trace.
    pub fn path_key(&self) -> Vec<(FunctionId, bool)> {
        self.entries.iter().map(|e| (e.ip, e.cpu_change)).collect()
    }

    /// True if any step runs on a different CPU than its predecessor.
    pub fn has_cpu_change(&self) -> bool {
        self.entries.iter().any(|e| e.cpu_change)
    }

    /// Average miss rate to DRAM or other CPUs' caches along the path (the quantity the
    /// data-profile view averages over paths, §4.1).
    pub fn remote_or_dram_fraction(&self) -> f64 {
        let mut total = 0u64;
        let mut bad = 0u64;
        for e in &self.entries {
            total += e.stats.count;
            for (name, count) in &e.stats.level_counts {
                if name == "foreign cache" || name == "DRAM" {
                    bad += count;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            bad as f64 / total as f64
        }
    }
}

/// Builds path traces for one type from its object access histories and the access
/// samples collected for the workload.
pub fn build_path_traces(
    type_id: TypeId,
    histories: &[ObjectAccessHistory],
    samples: &[AccessSample],
) -> Vec<PathTrace> {
    let by_key = aggregate_samples(samples);
    let by_ip = aggregate_samples_by_ip(samples);

    // Group histories by execution path.
    let mut groups: HashMap<Vec<(FunctionId, bool)>, Vec<&ObjectAccessHistory>> = HashMap::new();
    for h in histories
        .iter()
        .filter(|h| h.type_id == type_id && !h.elements.is_empty())
    {
        groups.entry(h.execution_path()).or_default().push(h);
    }

    let mut traces: Vec<PathTrace> = groups
        .into_iter()
        .map(|(path, group)| {
            let mut entries = Vec::with_capacity(path.len());
            for (step, &(ip, cpu_change)) in path.iter().enumerate() {
                // Collect the offsets/timestamps observed at this step across the group.
                let mut offsets = Vec::new();
                let mut is_write = false;
                let mut time_sum = 0.0;
                for h in &group {
                    let e = &h.elements[step];
                    if !offsets.contains(&e.offset) {
                        offsets.push(e.offset);
                    }
                    is_write |= e.is_write;
                    time_sum += e.time as f64;
                }
                offsets.sort_unstable();
                // Attach sample statistics: prefer an offset-precise match, fall back to
                // the per-ip aggregate.
                let mut stats = SampleStats::default();
                for &off in &offsets {
                    if let Some(s) = by_key.get(&SampleKey {
                        type_id,
                        offset: off & !7,
                        ip,
                    }) {
                        stats.count += s.count;
                        stats.total_latency += s.total_latency;
                        for (k, v) in &s.level_counts {
                            *stats.level_counts.entry(k.clone()).or_insert(0) += v;
                        }
                    }
                }
                if stats.count == 0 {
                    if let Some(s) = by_ip.get(&(type_id, ip)) {
                        stats = s.clone();
                    }
                }
                entries.push(PathTraceEntry {
                    ip,
                    cpu_change,
                    offsets,
                    is_write,
                    avg_timestamp: time_sum / group.len() as f64,
                    stats,
                });
            }
            let lifetimes: Vec<f64> = group
                .iter()
                .filter_map(|h| h.lifetime)
                .map(|l| l as f64)
                .collect();
            PathTrace {
                type_id,
                entries,
                frequency: group.len() as u64,
                avg_lifetime: if lifetimes.is_empty() {
                    0.0
                } else {
                    lifetimes.iter().sum::<f64>() / lifetimes.len() as f64
                },
            }
        })
        .collect();
    // Equal-frequency paths tie-break on the execution path itself: the group map's
    // iteration order is not stable across processes, and the trace order feeds the
    // data-flow graph's node numbering (and therefore the rendered report).
    traces.sort_by(|a, b| {
        b.frequency.cmp(&a.frequency).then_with(|| {
            a.entries
                .iter()
                .map(|e| (e.ip, e.cpu_change))
                .cmp(b.entries.iter().map(|e| (e.ip, e.cpu_change)))
        })
    });
    traces
}

/// Counts the number of distinct execution paths present in a set of histories — the
/// metric of Figure 6-3 (percent of unique paths captured vs. history sets collected).
pub fn count_unique_paths(histories: &[ObjectAccessHistory]) -> usize {
    let mut set = std::collections::HashSet::new();
    for h in histories {
        if !h.elements.is_empty() {
            set.insert(h.execution_path());
        }
    }
    set.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::HistoryElement;
    use sim_cache::HitLevel;

    fn hist(type_id: u32, path: &[(u32, usize, bool)], lifetime: u64) -> ObjectAccessHistory {
        // path entries: (ip, cpu, is_write)
        ObjectAccessHistory {
            type_id: TypeId(type_id),
            watched_offsets: vec![0],
            alloc_core: 0,
            elements: path
                .iter()
                .enumerate()
                .map(|(i, &(ip, cpu, w))| HistoryElement {
                    offset: 24,
                    ip: FunctionId(ip),
                    cpu,
                    time: (i as u64 + 1) * 10,
                    is_write: w,
                })
                .collect(),
            lifetime: Some(lifetime),
        }
    }

    fn sample(type_id: u32, offset: u64, ip: u32, level: HitLevel, latency: u64) -> AccessSample {
        AccessSample {
            type_id: TypeId(type_id),
            offset,
            ip: FunctionId(ip),
            cpu: 0,
            level,
            latency,
            is_write: false,
        }
    }

    #[test]
    fn identical_paths_merge_and_count_frequency() {
        let histories = vec![
            hist(1, &[(10, 0, true), (20, 1, false)], 100),
            hist(1, &[(10, 0, true), (20, 1, false)], 200),
            hist(1, &[(10, 0, true), (30, 0, false)], 50),
        ];
        let traces = build_path_traces(TypeId(1), &histories, &[]);
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].frequency, 2, "most frequent path first");
        assert_eq!(traces[1].frequency, 1);
        assert!((traces[0].avg_lifetime - 150.0).abs() < 1e-9);
        assert!(traces[0].has_cpu_change());
        assert!(!traces[1].has_cpu_change());
    }

    #[test]
    fn samples_annotate_matching_entries() {
        let histories = vec![hist(1, &[(10, 0, true), (20, 1, false)], 100)];
        let samples = vec![
            sample(1, 24, 20, HitLevel::RemoteCache, 200),
            sample(1, 24, 20, HitLevel::RemoteCache, 200),
            sample(1, 24, 10, HitLevel::L1, 3),
        ];
        let traces = build_path_traces(TypeId(1), &histories, &samples);
        let t = &traces[0];
        assert_eq!(t.entries[0].stats.count, 1);
        assert_eq!(t.entries[1].stats.count, 2);
        assert!(t.entries[1].stats.hit_probability(HitLevel::RemoteCache) > 0.99);
        assert!(t.remote_or_dram_fraction() > 0.5);
    }

    #[test]
    fn unique_path_counting() {
        let histories = vec![
            hist(1, &[(10, 0, false)], 1),
            hist(1, &[(10, 0, false)], 1),
            hist(1, &[(10, 0, false), (20, 0, false)], 1),
            hist(1, &[(30, 1, true)], 1),
        ];
        assert_eq!(count_unique_paths(&histories), 3);
        assert_eq!(count_unique_paths(&[]), 0);
    }

    #[test]
    fn histories_of_other_types_ignored() {
        let histories = vec![hist(1, &[(10, 0, false)], 1), hist(2, &[(99, 0, false)], 1)];
        let traces = build_path_traces(TypeId(1), &histories, &[]);
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].entries[0].ip, FunctionId(10));
    }
}
