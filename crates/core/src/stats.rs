//! Small statistical helpers for the sampled views: binomial confidence intervals on
//! miss shares and the rank-stability marking derived from them.
//!
//! A data-profile row's miss share is an estimate of a binomial proportion (`k` of the
//! phase's `n` L1-miss samples landed on the type).  The Wilson score interval is used
//! because miss shares are routinely near 0 or 1 and per-type sample counts can be
//! small — exactly where the naive normal approximation collapses to zero width.

/// z for a two-sided 95% interval.
const Z95: f64 = 1.959963984540054;

/// The 95% Wilson score interval for a binomial proportion, as `(low, high)` in
/// `[0, 1]`.  Returns `(0, 1)` when there are no trials (nothing is known).
pub fn wilson95(successes: u64, trials: u64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = Z95 * Z95;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (Z95 / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Marks which rows of a ranked list hold their rank with statistical confidence.
///
/// `intervals` are the rows' confidence intervals on the ranking metric, in rank
/// order (best first).  A row is *rank-stable* when its interval does not overlap
/// either neighbour's — swapping it with the row above or below would contradict the
/// intervals.  A single row is trivially stable.
pub fn mark_rank_stability(intervals: &[(f64, f64)]) -> Vec<bool> {
    let overlaps = |a: (f64, f64), b: (f64, f64)| a.0 <= b.1 && b.0 <= a.1;
    (0..intervals.len())
        .map(|i| {
            let above_ok = i == 0 || !overlaps(intervals[i], intervals[i - 1]);
            let below_ok = i + 1 == intervals.len() || !overlaps(intervals[i], intervals[i + 1]);
            above_ok && below_ok
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wilson_interval_contains_the_point_estimate() {
        for &(k, n) in &[(0u64, 10u64), (1, 10), (5, 10), (10, 10), (500, 1000)] {
            let p = k as f64 / n as f64;
            let (lo, hi) = wilson95(k, n);
            assert!(
                lo <= p + 1e-12 && p <= hi + 1e-12,
                "({k},{n}): {lo} {p} {hi}"
            );
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn wilson_interval_narrows_with_more_trials() {
        let (lo1, hi1) = wilson95(5, 10);
        let (lo2, hi2) = wilson95(500, 1000);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn wilson_with_no_trials_is_vacuous() {
        assert_eq!(wilson95(0, 0), (0.0, 1.0));
    }

    #[test]
    fn rank_stability_requires_separation_from_both_neighbours() {
        // Row 0 clearly above row 1; rows 1 and 2 overlap each other.
        let marks = mark_rank_stability(&[(0.8, 0.9), (0.4, 0.5), (0.45, 0.55)]);
        assert_eq!(marks, vec![true, false, false]);
        assert_eq!(mark_rank_stability(&[(0.1, 0.9)]), vec![true]);
        assert!(mark_rank_stability(&[]).is_empty());
    }
}
