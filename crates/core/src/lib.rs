//! # dprof-core
//!
//! A reproduction of **DProf**, the data-centric cache profiler from *"Locating Cache
//! Performance Bottlenecks Using Data Profiling"* (Pesterev; EuroSys 2010 / MIT MEng
//! thesis, 2010).
//!
//! Conventional profilers attribute cost to *code*; DProf attributes cache misses to
//! *data types* and to the execution paths objects of each type take through the
//! system.  It collects two kinds of raw data using CPU performance-monitoring
//! hardware — IBS-style access samples and debug-register object access histories —
//! combines them into *path traces*, and presents four views:
//!
//! 1. [`views::data_profile`] — types ranked by their share of cache misses,
//! 2. [`views::miss_class`] — the kinds of misses each type suffers,
//! 3. [`views::working_set`] — what occupies the cache and which associativity sets are
//!    over-subscribed,
//! 4. [`views::data_flow`] — where objects move between cores.
//!
//! The hardware dependencies are provided by the [`sim_machine`] crate (IBS unit,
//! watchpoint unit, per-core clocks) and the kernel substrate by [`sim_kernel`] (typed
//! SLAB allocator = address-to-type resolver, network stack, locks).
//!
//! ## Quick start
//!
//! ```
//! use dprof_core::{Dprof, DprofConfig};
//! use sim_kernel::{KernelConfig, KernelState};
//! use sim_machine::{Machine, MachineConfig};
//!
//! // Build a 2-core machine and kernel, and a trivial workload.
//! let mut machine = Machine::new(MachineConfig::with_cores(2));
//! let mut kernel = KernelState::new(
//!     &mut machine,
//!     KernelConfig { cores: 2, workers_per_core: 1, ..Default::default() },
//! );
//! let step = |m: &mut Machine, k: &mut KernelState| {
//!     for core in 0..2 {
//!         let skb = k.netif_rx(m, core, 100);
//!         k.udp_deliver(m, core, skb, core);
//!         k.udp_app_recv(m, core, core);
//!     }
//! };
//!
//! // Profile it.
//! let mut config = DprofConfig::default();
//! config.sample_rounds = 50;
//! config.history_types = 1;
//! config.history.history_sets = 2;
//! let profile = Dprof::new(config).run(&mut machine, &mut kernel, step);
//! assert!(!profile.data_profile.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ground_truth;
pub mod history;
pub mod merge;
pub mod path_trace;
pub mod profiler;
pub mod report;
pub mod sample;
pub mod schema;
pub mod stats;
pub mod views;
pub mod whatif;

pub use ground_truth::{resolve_ground_truth, GroundTruthProfile, GroundTruthRow};
pub use history::{
    collect_histories, CollectionMode, CollectionStats, HistoryConfig, HistoryElement,
    ObjectAccessHistory,
};
pub use merge::{
    merge_shards, shard_from_merged, summary_from_merged, MergeSink, MergedReport, ProfileShard,
    ShardMeta, StreamingMerge,
};
pub use path_trace::{build_path_traces, count_unique_paths, PathTrace, PathTraceEntry};
pub use profiler::{popular_offsets, Dprof, DprofConfig, DprofProfile, SamplePhase};
pub use report::diff::{
    diff, diff_with, DiffThresholds, ReportDiff, ReportSummary, TypeDelta, TypeSummary, Verdict,
};
pub use sample::{aggregate_samples, resolve_samples, AccessSample, SampleKey, SampleStats};
pub use stats::{mark_rank_stability, wilson95};
pub use views::{
    build_data_profile, build_utilization, build_working_set, classify_misses, DataFlowEdge,
    DataFlowGraph, DataFlowNode, DataProfileRow, MissClass, TypeMissClassification, TypeWorkingSet,
    UtilizationOrigin, UtilizationProfile, UtilizationRow, WorkingSetView,
};
pub use whatif::{blocks_from_rounds, estimate_gain, rank_candidates, BlockDelta, GainEstimate};
