//! Streaming, shard-based merging of profiles into one report.
//!
//! This used to live in `crates/cli/src/merge.rs` as a one-shot function over the
//! CLI's per-thread runs.  `dprof serve` needs the same merge as a long-lived,
//! incremental operation over shards pushed by many producers, so the algorithm now
//! lives here behind the [`MergeSink`] trait and a producer-neutral input type,
//! [`ProfileShard`]; the CLI's one-shot path is a thin adapter over the same code.
//!
//! Shards profile *independent* simulated machines, so `TypeId`s are only meaningful
//! within a producer; merging keys everything by type name and function name instead.
//! Percentage-style metrics are combined as weighted means (weighted by each shard's
//! miss-sample count, so a shard that observed more misses counts for more), additive
//! metrics are summed, and footprint metrics are averaged — mirroring how the paper
//! averages repeated runs of the real machine.
//!
//! **Determinism.** IEEE-754 addition is commutative but not associative, so a naive
//! running fold would make the merged floats depend on arrival order.
//! [`StreamingMerge`] therefore keeps absorbed shards and, at [`MergeSink::finish`],
//! sorts them into a canonical order (ordinal, then seed/thread tie-breaks) before
//! folding — the merged report is bit-identical no matter the order shards arrived
//! in, and identical to the pre-refactor one-shot merge (the CLI assigns ordinals in
//! thread order).  All merged collections are additionally sorted on stable keys, so
//! the rendered report is byte-identical for identical inputs regardless of `HashMap`
//! iteration order.
//!
//! **Bounded memory.** A sink built with [`StreamingMerge::with_compact_threshold`]
//! folds its retained shards into a single base shard whenever the threshold is
//! reached, so memory stays proportional to the distinct-type count rather than the
//! shard count.  Compaction is exact for all counts (samples, misses, requests,
//! Wilson-interval numerators/denominators) and rounding-level for weighted-mean
//! percentages; it collapses per-producer thread rows into one aggregate row.

use crate::profiler::DprofProfile;
use crate::report::diff::{ReportSummary, TypeSummary};
use crate::stats::{mark_rank_stability, wilson95};
use crate::views::MissClass;
use sim_kernel::TypeId;
use std::collections::HashMap;

/// Producer-level bookkeeping carried by a shard into the merged thread table.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShardMeta {
    /// Producer thread index (CLI) or 0 for pushed/compacted shards.
    pub thread: usize,
    /// Seed the producer ran with.
    pub seed: u64,
    /// Requests completed while profiled.
    pub requests: u64,
    /// Simulated requests per second.
    pub rps: f64,
    /// Fraction of cycles spent in profiling interrupts.
    pub profiling_fraction: f64,
    /// Access samples collected.
    pub samples: u64,
    /// Total simulated cycles (weights the merged profiling-overhead mean; pushed
    /// report shards carry 0, which simply drops them from that weighted mean).
    pub total_cycles: u64,
}

/// One data-profile row of a shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardProfileRow {
    /// Type name.
    pub name: String,
    /// Human-readable description.
    pub description: String,
    /// Mean working-set footprint over the `threads_seen` threads folded in, bytes.
    pub working_set_bytes: f64,
    /// Share of L1 miss samples, percent (relative to the shard's [`ProfileShard::weight`]).
    pub pct_of_l1_misses: f64,
    /// Share of miss cycles, percent.
    pub pct_of_miss_cycles: f64,
    /// Whether the type bounced between cores.
    pub bounce: bool,
    /// Access samples attributed to the type.
    pub samples: u64,
    /// L1-miss samples attributed to the type (the Wilson-interval numerator).
    pub l1_miss_samples: u64,
    /// How many producer threads this row already aggregates (1 for a fresh
    /// per-thread shard; more for pushed reports and compacted base shards).
    pub threads_seen: usize,
}

/// One miss-classification row of a shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMissRow {
    /// Type name.
    pub name: String,
    /// Miss samples classified for the type.
    pub miss_samples: u64,
    /// Fraction of invalidation misses.
    pub invalidation: f64,
    /// Fraction of conflict misses.
    pub conflict: f64,
    /// Fraction of capacity misses.
    pub capacity: f64,
}

/// Per-allocation-origin share of one shard utilization row.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardUtilizationOrigin {
    /// Origin label (`"cpu<k>"`).
    pub origin: String,
    /// Granule-slots fetched for objects from this origin.
    pub slots_fetched: u64,
    /// Of those, slots touched before eviction.
    pub slots_touched: u64,
}

/// One line-utilization row of a shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardUtilizationRow {
    /// Type name.
    pub name: String,
    /// Description.
    pub description: String,
    /// Granule-slots fetched for the type (pooled exactly across shards).
    pub slots_fetched: u64,
    /// Of those, slots touched before eviction.
    pub slots_touched: u64,
    /// Fetched slots that rode a re-fetch of a previously fetched line.
    pub refetch_slots: u64,
    /// Wasted-bandwidth rate of this shard's machine.  Shards profile machines
    /// running in parallel, so merged rates are *sums* (like `aggregate_rps`).
    pub wasted_bytes_per_sec: f64,
    /// Per-allocation-origin breakdown.
    pub origins: Vec<ShardUtilizationOrigin>,
}

/// The line-utilization view of a shard.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShardUtilization {
    /// Per-type rows.
    pub rows: Vec<ShardUtilizationRow>,
    /// Counted line fills in the shard's tally.
    pub total_fetches: u64,
    /// Of those, re-fetches of previously fetched lines.
    pub total_refetches: u64,
    /// Granule-slots fetched that resolved to a type.
    pub resolved_slots_fetched: u64,
    /// Of the resolved slots, those touched before eviction.
    pub resolved_slots_touched: u64,
}

/// One working-set row of a shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardWorkingSetRow {
    /// Type name.
    pub name: String,
    /// Description.
    pub description: String,
    /// Mean live bytes over the `threads_seen` threads folded in.
    pub avg_live_bytes: f64,
    /// Mean live object count.
    pub avg_live_objects: f64,
    /// Peak live bytes.
    pub peak_live_bytes: u64,
    /// How many producer threads this row already aggregates.
    pub threads_seen: usize,
}

/// The working-set view of a shard.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShardWorkingSet {
    /// Per-type rows.
    pub rows: Vec<ShardWorkingSetRow>,
    /// L2 capacity of one simulated machine, bytes.
    pub cache_capacity: u64,
    /// L2 associativity of one simulated machine.
    pub cache_ways: usize,
    /// Mean total working-set bytes over the `thread_count` threads folded in.
    pub total_avg_bytes: f64,
    /// How many producer threads this shard aggregates (the weight of
    /// `total_avg_bytes` in the merged mean).
    pub thread_count: usize,
    /// How many of those threads' working sets exceeded the cache capacity.
    pub threads_exceeding_capacity: usize,
    /// Number of over-subscribed associativity sets.
    pub conflict_sets: usize,
}

/// A node of a shard's data-flow graph, keyed by kernel function name.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardFlowNode {
    /// Kernel function name.
    pub function: String,
    /// Access samples matched to the node.
    pub samples: u64,
    /// Path-trace weight through the node.
    pub weight: u64,
    /// Sample-weighted average access latency, cycles.
    pub avg_latency: f64,
}

/// An edge of a shard's data-flow graph (endpoints by function name).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardFlowEdge {
    /// Source function name.
    pub from: String,
    /// Destination function name.
    pub to: String,
    /// Traversals.
    pub count: u64,
    /// Whether the object changed cores on this edge.
    pub cpu_change: bool,
}

/// The data-flow graph of one type within a shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardFlow {
    /// Type name.
    pub type_name: String,
    /// Nodes (any order; merged node order is re-derived).
    pub nodes: Vec<ShardFlowNode>,
    /// Edges (any order).
    pub edges: Vec<ShardFlowEdge>,
}

/// One producer's contribution to a merged report: a self-contained, name-keyed
/// summary of a profile that can be merged with any other shard of the same
/// workload.  Built from a live profile ([`ProfileShard::from_profile`]), parsed
/// from a pushed report (`schema::shard_from_report_json`), or produced by folding
/// other shards ([`shard_from_merged`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileShard {
    /// Position in the canonical fold order.  The CLI assigns the thread index;
    /// the server assigns a per-key monotonic counter.  Ties break on seed, thread
    /// and weight so the fold order — and hence every merged float — is a pure
    /// function of the shard *set*.
    pub ordinal: u64,
    /// Merge weight: the number of L1-miss access samples the shard observed
    /// (the denominator its percentage metrics are relative to).
    pub weight: f64,
    /// Producer bookkeeping.
    pub meta: ShardMeta,
    /// Data-profile rows.
    pub data_profile: Vec<ShardProfileRow>,
    /// Miss-classification rows.
    pub miss_classification: Vec<ShardMissRow>,
    /// Line-utilization view.
    pub utilization: ShardUtilization,
    /// Working-set view.
    pub working_set: ShardWorkingSet,
    /// Data-flow graphs, sorted by type name.
    pub data_flows: Vec<ShardFlow>,
}

impl ProfileShard {
    /// Builds a shard from a freshly collected profile.
    ///
    /// `type_names` resolves the profile's machine-local `TypeId`s to names (the
    /// only keys that are meaningful across producers); `meta` carries the
    /// producer's throughput bookkeeping and `ordinal` its canonical fold position.
    pub fn from_profile(
        profile: &DprofProfile,
        type_names: &HashMap<TypeId, String>,
        meta: ShardMeta,
        ordinal: u64,
    ) -> ProfileShard {
        let weight = profile.samples.iter().filter(|s| s.is_l1_miss()).count() as f64;
        let mut data_flows: Vec<ShardFlow> = profile
            .data_flows
            .iter()
            .map(|(ty, graph)| ShardFlow {
                type_name: type_names
                    .get(ty)
                    .cloned()
                    .unwrap_or_else(|| format!("type#{}", ty.0)),
                nodes: graph
                    .nodes
                    .iter()
                    .map(|n| ShardFlowNode {
                        function: n.name.clone(),
                        samples: n.samples,
                        weight: n.weight,
                        avg_latency: n.avg_latency,
                    })
                    .collect(),
                edges: graph
                    .edges
                    .iter()
                    .map(|e| ShardFlowEdge {
                        from: graph.nodes[e.from].name.clone(),
                        to: graph.nodes[e.to].name.clone(),
                        count: e.count,
                        cpu_change: e.cpu_change,
                    })
                    .collect(),
            })
            .collect();
        data_flows.sort_by(|a, b| a.type_name.cmp(&b.type_name));

        ProfileShard {
            ordinal,
            weight,
            meta,
            data_profile: profile
                .data_profile
                .iter()
                .map(|row| ShardProfileRow {
                    name: row.name.clone(),
                    description: row.description.clone(),
                    working_set_bytes: row.working_set_bytes,
                    pct_of_l1_misses: row.pct_of_l1_misses,
                    pct_of_miss_cycles: row.pct_of_miss_cycles,
                    bounce: row.bounce,
                    samples: row.samples,
                    l1_miss_samples: row.l1_miss_samples,
                    threads_seen: 1,
                })
                .collect(),
            miss_classification: profile
                .miss_classification
                .iter()
                .map(|row| ShardMissRow {
                    name: row.name.clone(),
                    miss_samples: row.miss_samples,
                    invalidation: row.fraction(MissClass::Invalidation),
                    conflict: row.fraction(MissClass::Conflict),
                    capacity: row.fraction(MissClass::Capacity),
                })
                .collect(),
            utilization: ShardUtilization {
                rows: profile
                    .utilization
                    .rows
                    .iter()
                    .map(|r| ShardUtilizationRow {
                        name: r.name.clone(),
                        description: r.description.clone(),
                        slots_fetched: r.slots_fetched,
                        slots_touched: r.slots_touched,
                        refetch_slots: r.refetch_slots,
                        wasted_bytes_per_sec: r.wasted_bytes_per_sec,
                        origins: r
                            .origins
                            .iter()
                            .map(|o| ShardUtilizationOrigin {
                                origin: o.origin.clone(),
                                slots_fetched: o.slots_fetched,
                                slots_touched: o.slots_touched,
                            })
                            .collect(),
                    })
                    .collect(),
                total_fetches: profile.utilization.total_fetches,
                total_refetches: profile.utilization.total_refetches,
                resolved_slots_fetched: profile.utilization.resolved_slots_fetched,
                resolved_slots_touched: profile.utilization.resolved_slots_touched,
            },
            working_set: ShardWorkingSet {
                rows: profile
                    .working_set
                    .per_type
                    .iter()
                    .map(|t| ShardWorkingSetRow {
                        name: t.name.clone(),
                        description: t.description.clone(),
                        avg_live_bytes: t.avg_live_bytes,
                        avg_live_objects: t.avg_live_objects,
                        peak_live_bytes: t.peak_live_bytes,
                        threads_seen: 1,
                    })
                    .collect(),
                cache_capacity: profile.working_set.cache_capacity,
                cache_ways: profile.working_set.cache_ways,
                total_avg_bytes: profile.working_set.total_avg_bytes(),
                thread_count: 1,
                threads_exceeding_capacity: usize::from(profile.working_set.exceeds_capacity()),
                conflict_sets: profile.working_set.conflict_sets.len(),
            },
            data_flows,
        }
    }

    /// The canonical fold-order key (see [`ProfileShard::ordinal`]).
    pub fn sort_key(&self) -> (u64, u64, usize, u64) {
        (
            self.ordinal,
            self.meta.seed,
            self.meta.thread,
            self.weight.to_bits(),
        )
    }
}

/// A data-profile row aggregated across shards.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedProfileRow {
    /// Type name.
    pub name: String,
    /// Human-readable description.
    pub description: String,
    /// Mean working-set footprint across the threads that saw the type, bytes.
    pub working_set_bytes: f64,
    /// Miss-weighted share of L1 miss samples, percent.
    pub pct_of_l1_misses: f64,
    /// Miss-weighted share of miss cycles, percent.
    pub pct_of_miss_cycles: f64,
    /// Whether any shard saw the type bounce between cores.
    pub bounce: bool,
    /// Total access samples attributed to the type, all shards.
    pub samples: u64,
    /// Total L1-miss samples attributed to the type, all shards (the merged
    /// miss-share numerator; pooling the counts is what lets the merged confidence
    /// interval be exact instead of a heuristic combination of per-shard ones).
    pub l1_miss_samples: u64,
    /// Lower bound of the 95% confidence interval on the merged miss share, percent.
    pub ci95_low: f64,
    /// Upper bound of the 95% confidence interval on the merged miss share, percent.
    pub ci95_high: f64,
    /// True when the merged rank is statistically firm (no CI overlap with either
    /// ranked neighbour).
    pub rank_stable: bool,
    /// Number of producer threads whose profile contained the type.
    pub threads_seen: usize,
}

/// A miss-classification row aggregated across shards.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedMissRow {
    /// Type name.
    pub name: String,
    /// Total miss samples, all shards.
    pub miss_samples: u64,
    /// Miss-weighted fraction of invalidation misses.
    pub invalidation: f64,
    /// Miss-weighted fraction of conflict misses.
    pub conflict: f64,
    /// Miss-weighted fraction of capacity misses.
    pub capacity: f64,
}

impl MergedMissRow {
    /// The dominant class name of the merged fractions.
    pub fn dominant(&self) -> &'static str {
        let mut best = ("invalidation", self.invalidation);
        for (name, value) in [("conflict", self.conflict), ("capacity", self.capacity)] {
            if value > best.1 {
                best = (name, value);
            }
        }
        best.0
    }
}

/// Per-allocation-origin share of a merged utilization row.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedUtilizationOrigin {
    /// Origin label (`"cpu<k>"`).
    pub origin: String,
    /// Total granule-slots fetched for this origin, all shards.
    pub slots_fetched: u64,
    /// Of those, slots touched before eviction.
    pub slots_touched: u64,
    /// Untouched bytes fetched for this origin.
    pub wasted_bytes: u64,
}

/// A line-utilization row aggregated across shards.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedUtilizationRow {
    /// Type name.
    pub name: String,
    /// Description.
    pub description: String,
    /// Total granule-slots fetched, all shards (the pooled Wilson denominator).
    pub slots_fetched: u64,
    /// Of those, slots touched before eviction (the pooled numerator).
    pub slots_touched: u64,
    /// Fetched slots riding re-fetches of previously fetched lines.
    pub refetch_slots: u64,
    /// `100 * slots_touched / slots_fetched` of the pooled counts.
    pub utilization_pct: f64,
    /// Pooled untouched bytes: `8 * (slots_fetched - slots_touched)`.
    pub wasted_bytes: u64,
    /// Sum of per-shard wasted-bandwidth rates (shards run in parallel).
    pub wasted_bytes_per_sec: f64,
    /// `refetch_slots / slots_fetched` of the pooled counts.
    pub refetch_ratio: f64,
    /// Lower bound of the 95% confidence interval on the pooled utilization, percent.
    pub ci95_low: f64,
    /// Upper bound of the 95% confidence interval, percent.
    pub ci95_high: f64,
    /// True when the merged wasted-bytes rank is statistically firm.
    pub rank_stable: bool,
    /// Per-allocation-origin breakdown, most-wasteful origin first.
    pub origins: Vec<MergedUtilizationOrigin>,
}

/// The merged line-utilization view.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MergedUtilization {
    /// Per-type rows, sorted by pooled wasted bytes (descending).
    pub rows: Vec<MergedUtilizationRow>,
    /// Total counted line fills, all shards.
    pub total_fetches: u64,
    /// Of those, re-fetches of previously fetched lines.
    pub total_refetches: u64,
    /// Granule-slots fetched that resolved to a type, all shards.
    pub resolved_slots_fetched: u64,
    /// Of the resolved slots, those touched before eviction.
    pub resolved_slots_touched: u64,
}

/// A working-set row aggregated across shards.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedWorkingSetRow {
    /// Type name.
    pub name: String,
    /// Description.
    pub description: String,
    /// Mean of per-thread average live bytes.
    pub avg_live_bytes: f64,
    /// Mean of per-thread average live object counts.
    pub avg_live_objects: f64,
    /// Maximum peak live bytes seen by any thread.
    pub peak_live_bytes: u64,
}

/// The merged working-set view.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MergedWorkingSet {
    /// Per-type rows, sorted by average live bytes (descending).
    pub rows: Vec<MergedWorkingSetRow>,
    /// L2 capacity of one simulated machine, bytes.
    pub cache_capacity: u64,
    /// L2 associativity of one simulated machine.
    pub cache_ways: usize,
    /// Mean of per-thread total average working-set bytes.
    pub total_avg_bytes: f64,
    /// Total producer threads folded in (denominator of `total_avg_bytes`).
    pub thread_count: usize,
    /// How many threads' working sets exceeded the cache capacity.
    pub threads_exceeding_capacity: usize,
    /// Largest number of over-subscribed associativity sets seen by any thread.
    pub max_conflict_sets: usize,
}

/// A node of a merged data-flow graph, keyed by kernel function name.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedFlowNode {
    /// Kernel function name.
    pub function: String,
    /// Total access samples matched to the node.
    pub samples: u64,
    /// Total path-trace weight through the node.
    pub weight: u64,
    /// Sample-weighted average access latency, cycles.
    pub avg_latency: f64,
}

/// An edge of a merged data-flow graph.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedFlowEdge {
    /// Source function name.
    pub from: String,
    /// Destination function name.
    pub to: String,
    /// Total traversals, all shards.
    pub count: u64,
    /// Whether the object changed cores on this edge.
    pub cpu_change: bool,
}

/// The merged data-flow graph for one type.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedDataFlow {
    /// Type name.
    pub type_name: String,
    /// Nodes sorted by weight (descending), then name.
    pub nodes: Vec<MergedFlowNode>,
    /// Edges sorted by count (descending), then endpoint names.
    pub edges: Vec<MergedFlowEdge>,
    /// Total traversals of core-crossing edges.
    pub core_crossings: u64,
}

/// Per-shard throughput summary carried into the report.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadSummary {
    /// Thread index.
    pub thread: usize,
    /// Seed the thread ran with.
    pub seed: u64,
    /// Requests completed while profiled.
    pub requests: u64,
    /// Simulated requests per second.
    pub rps: f64,
    /// Fraction of cycles spent in profiling interrupts.
    pub profiling_fraction: f64,
    /// Access samples collected.
    pub samples: u64,
}

/// Everything the report renderers consume.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MergedReport {
    /// Per-shard summaries, in canonical fold order.
    pub threads: Vec<ThreadSummary>,
    /// Total requests completed across shards while profiled.
    pub total_requests: u64,
    /// Sum of per-shard simulated request rates.
    pub aggregate_rps: f64,
    /// Cycle-weighted mean profiling overhead fraction.
    pub profiling_fraction: f64,
    /// Sum of per-shard simulated cycles (the weight behind `profiling_fraction`).
    pub total_cycles: u64,
    /// Pooled L1-miss sample count (sum of shard weights; the merged shares'
    /// denominator, preserved so a report can be folded back into a shard).
    pub pooled_weight: f64,
    /// Data-profile rows, sorted by merged miss share (descending).
    pub data_profile: Vec<MergedProfileRow>,
    /// Miss-classification rows, sorted by merged miss samples (descending).
    pub miss_classification: Vec<MergedMissRow>,
    /// The merged line-utilization view, sorted by pooled wasted bytes (descending).
    pub utilization: MergedUtilization,
    /// The merged working-set view.
    pub working_set: MergedWorkingSet,
    /// Merged data-flow graphs, sorted by type name.
    pub data_flows: Vec<MergedDataFlow>,
}

/// A destination that profile shards can be merged into incrementally.
///
/// The contract every implementation must honour (and the proptests pin):
/// [`finish`](MergeSink::finish) is a pure function of the *set* of absorbed
/// shards — absorbing the same shards in any order yields a bit-identical
/// [`MergedReport`], equal to [`merge_shards`] over the canonically sorted set.
pub trait MergeSink {
    /// Absorbs one shard.
    fn absorb(&mut self, shard: ProfileShard);
    /// Number of shards currently retained in memory (≤ absorbed when compacting).
    fn shard_count(&self) -> usize;
    /// Total number of shards ever absorbed.
    fn absorbed(&self) -> u64;
    /// Merges everything absorbed so far into a report.  The sink remains usable;
    /// an empty sink yields `MergedReport::default()`.
    fn finish(&self) -> MergedReport;
}

/// The canonical [`MergeSink`]: retains shards and folds them in canonical order.
#[derive(Debug, Clone)]
pub struct StreamingMerge {
    shards: Vec<ProfileShard>,
    compact_threshold: usize,
    absorbed: u64,
}

impl StreamingMerge {
    /// An unbounded sink: every absorbed shard is retained until `finish`.
    pub fn new() -> StreamingMerge {
        StreamingMerge {
            shards: Vec::new(),
            compact_threshold: usize::MAX,
            absorbed: 0,
        }
    }

    /// A bounded sink: whenever `threshold` shards are retained they are folded
    /// into a single base shard, keeping memory proportional to the type count.
    pub fn with_compact_threshold(threshold: usize) -> StreamingMerge {
        StreamingMerge {
            shards: Vec::new(),
            compact_threshold: threshold.max(2),
            absorbed: 0,
        }
    }

    /// Folds all retained shards into one base shard (no-op below 2 shards).
    ///
    /// Counts stay exact; weighted-mean percentages are reconstructed from the
    /// folded report at rounding-level accuracy; per-producer thread rows collapse
    /// into one aggregate row.
    pub fn compact(&mut self) {
        if self.shards.len() < 2 {
            return;
        }
        let report = self.finish();
        let ordinal = self.shards.iter().map(|s| s.ordinal).min().unwrap_or(0);
        self.shards = vec![shard_from_merged(&report, ordinal)];
    }
}

impl Default for StreamingMerge {
    fn default() -> StreamingMerge {
        StreamingMerge::new()
    }
}

impl MergeSink for StreamingMerge {
    fn absorb(&mut self, shard: ProfileShard) {
        self.shards.push(shard);
        self.absorbed += 1;
        if self.shards.len() >= self.compact_threshold {
            self.compact();
        }
    }

    fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn absorbed(&self) -> u64 {
        self.absorbed
    }

    fn finish(&self) -> MergedReport {
        let mut ordered: Vec<&ProfileShard> = self.shards.iter().collect();
        ordered.sort_by_key(|s| s.sort_key());
        merge_shards(&ordered)
    }
}

/// Merges shards in the given order.  Callers that need order-insensitivity must
/// pass a canonically sorted slice (which [`StreamingMerge::finish`] does); the
/// fold order determines the exact float rounding of weighted means.
pub fn merge_shards(shards: &[&ProfileShard]) -> MergedReport {
    if shards.is_empty() {
        return MergedReport::default();
    }

    let total_weight: f64 = shards.iter().map(|s| s.weight).sum();

    MergedReport {
        threads: shards
            .iter()
            .map(|s| ThreadSummary {
                thread: s.meta.thread,
                seed: s.meta.seed,
                requests: s.meta.requests,
                rps: s.meta.rps,
                profiling_fraction: s.meta.profiling_fraction,
                samples: s.meta.samples,
            })
            .collect(),
        total_requests: shards.iter().map(|s| s.meta.requests).sum(),
        aggregate_rps: shards.iter().map(|s| s.meta.rps).sum(),
        profiling_fraction: {
            // Cycle-weighted, so a shard that simulated 10x more work counts 10x.
            let cycles: u64 = shards.iter().map(|s| s.meta.total_cycles).sum();
            if cycles == 0 {
                0.0
            } else {
                shards
                    .iter()
                    .map(|s| s.meta.profiling_fraction * s.meta.total_cycles as f64)
                    .sum::<f64>()
                    / cycles as f64
            }
        },
        total_cycles: shards.iter().map(|s| s.meta.total_cycles).sum(),
        pooled_weight: total_weight,
        data_profile: merge_data_profile(shards, total_weight),
        miss_classification: merge_miss_classification(shards),
        utilization: merge_utilization(shards),
        working_set: merge_working_set(shards),
        data_flows: merge_data_flows(shards),
    }
}

fn merge_data_profile(shards: &[&ProfileShard], total_weight: f64) -> Vec<MergedProfileRow> {
    struct Acc {
        description: String,
        ws_sum: f64,
        pct_l1_weighted: f64,
        pct_cycles_weighted: f64,
        bounce: bool,
        samples: u64,
        l1_miss_samples: u64,
        threads_seen: usize,
    }
    let mut acc: HashMap<String, Acc> = HashMap::new();
    for shard in shards {
        for row in &shard.data_profile {
            let entry = acc.entry(row.name.clone()).or_insert_with(|| Acc {
                description: row.description.clone(),
                ws_sum: 0.0,
                pct_l1_weighted: 0.0,
                pct_cycles_weighted: 0.0,
                bounce: false,
                samples: 0,
                l1_miss_samples: 0,
                threads_seen: 0,
            });
            // `working_set_bytes` is the row's mean over `threads_seen` threads;
            // re-expanding to a sum keeps the merged mean exact under compaction
            // (and is a multiplication by 1.0 — bit-exact — for fresh shards).
            entry.ws_sum += row.working_set_bytes * row.threads_seen as f64;
            entry.pct_l1_weighted += shard.weight * row.pct_of_l1_misses;
            entry.pct_cycles_weighted += shard.weight * row.pct_of_miss_cycles;
            entry.bounce |= row.bounce;
            entry.samples += row.samples;
            entry.l1_miss_samples += row.l1_miss_samples;
            entry.threads_seen += row.threads_seen;
        }
    }
    // The miss-weighted mean of per-shard shares equals the pooled share
    // (sum of counts over sum of totals), so the pooled counts also give the
    // interval of exactly the estimate the merged column shows.
    let pooled_total = total_weight.round() as u64;
    let mut rows: Vec<MergedProfileRow> = acc
        .into_iter()
        .map(|(name, a)| {
            let (ci_lo, ci_hi) = wilson95(a.l1_miss_samples, pooled_total);
            MergedProfileRow {
                name,
                description: a.description,
                working_set_bytes: a.ws_sum / a.threads_seen as f64,
                pct_of_l1_misses: if total_weight > 0.0 {
                    a.pct_l1_weighted / total_weight
                } else {
                    0.0
                },
                pct_of_miss_cycles: if total_weight > 0.0 {
                    a.pct_cycles_weighted / total_weight
                } else {
                    0.0
                },
                bounce: a.bounce,
                samples: a.samples,
                l1_miss_samples: a.l1_miss_samples,
                ci95_low: 100.0 * ci_lo,
                ci95_high: 100.0 * ci_hi,
                rank_stable: false, // marked after ranking, below
                threads_seen: a.threads_seen,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.pct_of_l1_misses
            .partial_cmp(&a.pct_of_l1_misses)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });
    let intervals: Vec<(f64, f64)> = rows.iter().map(|r| (r.ci95_low, r.ci95_high)).collect();
    for (row, stable) in rows.iter_mut().zip(mark_rank_stability(&intervals)) {
        row.rank_stable = stable;
    }
    rows
}

fn merge_miss_classification(shards: &[&ProfileShard]) -> Vec<MergedMissRow> {
    struct Acc {
        miss_samples: u64,
        invalidation: f64,
        conflict: f64,
        capacity: f64,
    }
    let mut acc: HashMap<String, Acc> = HashMap::new();
    for shard in shards {
        for row in &shard.miss_classification {
            let w = row.miss_samples as f64;
            let entry = acc.entry(row.name.clone()).or_insert_with(|| Acc {
                miss_samples: 0,
                invalidation: 0.0,
                conflict: 0.0,
                capacity: 0.0,
            });
            entry.miss_samples += row.miss_samples;
            entry.invalidation += w * row.invalidation;
            entry.conflict += w * row.conflict;
            entry.capacity += w * row.capacity;
        }
    }
    let mut rows: Vec<MergedMissRow> = acc
        .into_iter()
        .map(|(name, a)| {
            let w = a.miss_samples.max(1) as f64;
            MergedMissRow {
                name,
                miss_samples: a.miss_samples,
                invalidation: a.invalidation / w,
                conflict: a.conflict / w,
                capacity: a.capacity / w,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.miss_samples
            .cmp(&a.miss_samples)
            .then_with(|| a.name.cmp(&b.name))
    });
    rows
}

fn merge_utilization(shards: &[&ProfileShard]) -> MergedUtilization {
    struct Acc {
        description: String,
        slots_fetched: u64,
        slots_touched: u64,
        refetch_slots: u64,
        rate: f64,
        origins: HashMap<String, (u64, u64)>,
    }
    let mut acc: HashMap<String, Acc> = HashMap::new();
    for shard in shards {
        for row in &shard.utilization.rows {
            let entry = acc.entry(row.name.clone()).or_insert_with(|| Acc {
                description: row.description.clone(),
                slots_fetched: 0,
                slots_touched: 0,
                refetch_slots: 0,
                rate: 0.0,
                origins: HashMap::new(),
            });
            entry.slots_fetched += row.slots_fetched;
            entry.slots_touched += row.slots_touched;
            entry.refetch_slots += row.refetch_slots;
            // Per-shard rates are bandwidths of machines running in parallel, so they
            // add; the pooled slot counts stay exact for the Wilson interval.
            entry.rate += row.wasted_bytes_per_sec;
            for o in &row.origins {
                let slot = entry.origins.entry(o.origin.clone()).or_default();
                slot.0 += o.slots_fetched;
                slot.1 += o.slots_touched;
            }
        }
    }
    let mut rows: Vec<MergedUtilizationRow> = acc
        .into_iter()
        .map(|(name, a)| {
            let mut origins: Vec<MergedUtilizationOrigin> = a
                .origins
                .into_iter()
                .map(|(origin, (fetched, touched))| MergedUtilizationOrigin {
                    origin,
                    slots_fetched: fetched,
                    slots_touched: touched,
                    wasted_bytes: 8 * (fetched - touched),
                })
                .collect();
            origins.sort_by(|x, y| {
                y.wasted_bytes
                    .cmp(&x.wasted_bytes)
                    .then_with(|| x.origin.cmp(&y.origin))
            });
            let (lo, hi) = wilson95(a.slots_touched, a.slots_fetched);
            MergedUtilizationRow {
                name,
                description: a.description,
                slots_fetched: a.slots_fetched,
                slots_touched: a.slots_touched,
                refetch_slots: a.refetch_slots,
                utilization_pct: if a.slots_fetched == 0 {
                    0.0
                } else {
                    100.0 * a.slots_touched as f64 / a.slots_fetched as f64
                },
                wasted_bytes: 8 * (a.slots_fetched - a.slots_touched),
                wasted_bytes_per_sec: a.rate,
                refetch_ratio: if a.slots_fetched == 0 {
                    0.0
                } else {
                    a.refetch_slots as f64 / a.slots_fetched as f64
                },
                ci95_low: 100.0 * lo,
                ci95_high: 100.0 * hi,
                rank_stable: false, // marked after ranking, below
                origins,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.wasted_bytes
            .cmp(&a.wasted_bytes)
            .then_with(|| a.name.cmp(&b.name))
    });
    // Rank stability over the wasted-byte ranges implied by the utilization CI
    // (high utilization => low waste, so the interval ends swap).
    let intervals: Vec<(f64, f64)> = rows
        .iter()
        .map(|r| {
            let bytes = 8.0 * r.slots_fetched as f64;
            (
                bytes * (1.0 - r.ci95_high / 100.0),
                bytes * (1.0 - r.ci95_low / 100.0),
            )
        })
        .collect();
    for (row, stable) in rows.iter_mut().zip(mark_rank_stability(&intervals)) {
        row.rank_stable = stable;
    }
    MergedUtilization {
        rows,
        total_fetches: shards.iter().map(|s| s.utilization.total_fetches).sum(),
        total_refetches: shards.iter().map(|s| s.utilization.total_refetches).sum(),
        resolved_slots_fetched: shards
            .iter()
            .map(|s| s.utilization.resolved_slots_fetched)
            .sum(),
        resolved_slots_touched: shards
            .iter()
            .map(|s| s.utilization.resolved_slots_touched)
            .sum(),
    }
}

fn merge_working_set(shards: &[&ProfileShard]) -> MergedWorkingSet {
    struct Acc {
        description: String,
        bytes_sum: f64,
        objects_sum: f64,
        peak: u64,
        threads_seen: usize,
    }
    let mut acc: HashMap<String, Acc> = HashMap::new();
    for shard in shards {
        for t in &shard.working_set.rows {
            let entry = acc.entry(t.name.clone()).or_insert_with(|| Acc {
                description: t.description.clone(),
                bytes_sum: 0.0,
                objects_sum: 0.0,
                peak: 0,
                threads_seen: 0,
            });
            entry.bytes_sum += t.avg_live_bytes * t.threads_seen as f64;
            entry.objects_sum += t.avg_live_objects * t.threads_seen as f64;
            entry.peak = entry.peak.max(t.peak_live_bytes);
            entry.threads_seen += t.threads_seen;
        }
    }
    let mut rows: Vec<MergedWorkingSetRow> = acc
        .into_iter()
        .map(|(name, a)| MergedWorkingSetRow {
            name,
            description: a.description,
            avg_live_bytes: a.bytes_sum / a.threads_seen as f64,
            avg_live_objects: a.objects_sum / a.threads_seen as f64,
            peak_live_bytes: a.peak,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.avg_live_bytes
            .partial_cmp(&a.avg_live_bytes)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.name.cmp(&b.name))
    });

    let first = &shards[0].working_set;
    let thread_count: usize = shards.iter().map(|s| s.working_set.thread_count).sum();
    MergedWorkingSet {
        rows,
        cache_capacity: first.cache_capacity,
        cache_ways: first.cache_ways,
        total_avg_bytes: shards
            .iter()
            .map(|s| s.working_set.total_avg_bytes * s.working_set.thread_count as f64)
            .sum::<f64>()
            / thread_count.max(1) as f64,
        thread_count,
        threads_exceeding_capacity: shards
            .iter()
            .map(|s| s.working_set.threads_exceeding_capacity)
            .sum(),
        max_conflict_sets: shards
            .iter()
            .map(|s| s.working_set.conflict_sets)
            .max()
            .unwrap_or(0),
    }
}

fn merge_data_flows(shards: &[&ProfileShard]) -> Vec<MergedDataFlow> {
    struct NodeAcc {
        samples: u64,
        weight: u64,
        latency_weighted: f64,
    }
    struct FlowAcc {
        nodes: HashMap<String, NodeAcc>,
        edges: HashMap<(String, String, bool), u64>,
    }
    let mut flows: HashMap<String, FlowAcc> = HashMap::new();
    for shard in shards {
        for graph in &shard.data_flows {
            let flow = flows
                .entry(graph.type_name.clone())
                .or_insert_with(|| FlowAcc {
                    nodes: HashMap::new(),
                    edges: HashMap::new(),
                });
            for node in &graph.nodes {
                let acc = flow
                    .nodes
                    .entry(node.function.clone())
                    .or_insert_with(|| NodeAcc {
                        samples: 0,
                        weight: 0,
                        latency_weighted: 0.0,
                    });
                acc.samples += node.samples;
                acc.weight += node.weight;
                // Per-shard avg_latency is a per-sample mean, so weight by samples to
                // keep the merged value a per-sample mean.
                acc.latency_weighted += node.samples as f64 * node.avg_latency;
            }
            for edge in &graph.edges {
                let key = (edge.from.clone(), edge.to.clone(), edge.cpu_change);
                *flow.edges.entry(key).or_insert(0) += edge.count;
            }
        }
    }
    let mut merged: Vec<MergedDataFlow> = flows
        .into_iter()
        .map(|(type_name, flow)| {
            let mut nodes: Vec<MergedFlowNode> = flow
                .nodes
                .into_iter()
                .map(|(function, a)| MergedFlowNode {
                    function,
                    samples: a.samples,
                    weight: a.weight,
                    avg_latency: if a.samples > 0 {
                        a.latency_weighted / a.samples as f64
                    } else {
                        0.0
                    },
                })
                .collect();
            nodes.sort_by(|a, b| {
                b.weight
                    .cmp(&a.weight)
                    .then_with(|| a.function.cmp(&b.function))
            });
            let mut edges: Vec<MergedFlowEdge> = flow
                .edges
                .into_iter()
                .map(|((from, to, cpu_change), count)| MergedFlowEdge {
                    from,
                    to,
                    count,
                    cpu_change,
                })
                .collect();
            // The full accumulation key — (from, to, cpu_change) — must participate
            // in the sort: two edges differing only in cpu_change would otherwise
            // tie and inherit HashMap iteration order, which is not stable across
            // processes (record vs replay byte-diffs the rendered report).
            edges.sort_by(|a, b| {
                b.count
                    .cmp(&a.count)
                    .then_with(|| a.from.cmp(&b.from))
                    .then_with(|| a.to.cmp(&b.to))
                    .then_with(|| a.cpu_change.cmp(&b.cpu_change))
            });
            let core_crossings = edges.iter().filter(|e| e.cpu_change).map(|e| e.count).sum();
            MergedDataFlow {
                type_name,
                nodes,
                edges,
                core_crossings,
            }
        })
        .collect();
    merged.sort_by(|a, b| a.type_name.cmp(&b.type_name));
    merged
}

/// Folds a merged report back into a single base shard (the compaction step and
/// the serve store's snapshot payload).
///
/// Counts are preserved exactly; weighted means become single observations whose
/// weight is the pooled weight, so re-merging the base shard with new shards gives
/// the same answer as merging the originals up to float rounding.  Per-producer
/// thread rows collapse into one aggregate row.
pub fn shard_from_merged(report: &MergedReport, ordinal: u64) -> ProfileShard {
    ProfileShard {
        ordinal,
        weight: report.pooled_weight,
        meta: ShardMeta {
            thread: 0,
            seed: 0,
            requests: report.total_requests,
            rps: report.aggregate_rps,
            profiling_fraction: report.profiling_fraction,
            samples: report.threads.iter().map(|t| t.samples).sum(),
            total_cycles: report.total_cycles,
        },
        data_profile: report
            .data_profile
            .iter()
            .map(|r| ShardProfileRow {
                name: r.name.clone(),
                description: r.description.clone(),
                working_set_bytes: r.working_set_bytes,
                pct_of_l1_misses: r.pct_of_l1_misses,
                pct_of_miss_cycles: r.pct_of_miss_cycles,
                bounce: r.bounce,
                samples: r.samples,
                l1_miss_samples: r.l1_miss_samples,
                threads_seen: r.threads_seen,
            })
            .collect(),
        miss_classification: report
            .miss_classification
            .iter()
            .map(|r| ShardMissRow {
                name: r.name.clone(),
                miss_samples: r.miss_samples,
                invalidation: r.invalidation,
                conflict: r.conflict,
                capacity: r.capacity,
            })
            .collect(),
        utilization: ShardUtilization {
            rows: report
                .utilization
                .rows
                .iter()
                .map(|r| ShardUtilizationRow {
                    name: r.name.clone(),
                    description: r.description.clone(),
                    slots_fetched: r.slots_fetched,
                    slots_touched: r.slots_touched,
                    refetch_slots: r.refetch_slots,
                    wasted_bytes_per_sec: r.wasted_bytes_per_sec,
                    origins: r
                        .origins
                        .iter()
                        .map(|o| ShardUtilizationOrigin {
                            origin: o.origin.clone(),
                            slots_fetched: o.slots_fetched,
                            slots_touched: o.slots_touched,
                        })
                        .collect(),
                })
                .collect(),
            total_fetches: report.utilization.total_fetches,
            total_refetches: report.utilization.total_refetches,
            resolved_slots_fetched: report.utilization.resolved_slots_fetched,
            resolved_slots_touched: report.utilization.resolved_slots_touched,
        },
        working_set: ShardWorkingSet {
            rows: report
                .working_set
                .rows
                .iter()
                .map(|r| {
                    // Re-derive the per-row thread multiplicity from the profile
                    // rows where it is tracked; default to the folded thread count.
                    let threads_seen = report
                        .data_profile
                        .iter()
                        .find(|p| p.name == r.name)
                        .map(|p| p.threads_seen)
                        .unwrap_or_else(|| report.working_set.thread_count.max(1));
                    ShardWorkingSetRow {
                        name: r.name.clone(),
                        description: r.description.clone(),
                        avg_live_bytes: r.avg_live_bytes,
                        avg_live_objects: r.avg_live_objects,
                        peak_live_bytes: r.peak_live_bytes,
                        threads_seen,
                    }
                })
                .collect(),
            cache_capacity: report.working_set.cache_capacity,
            cache_ways: report.working_set.cache_ways,
            total_avg_bytes: report.working_set.total_avg_bytes,
            thread_count: report.working_set.thread_count.max(1),
            threads_exceeding_capacity: report.working_set.threads_exceeding_capacity,
            conflict_sets: report.working_set.max_conflict_sets,
        },
        data_flows: report
            .data_flows
            .iter()
            .map(|f| ShardFlow {
                type_name: f.type_name.clone(),
                nodes: f
                    .nodes
                    .iter()
                    .map(|n| ShardFlowNode {
                        function: n.function.clone(),
                        samples: n.samples,
                        weight: n.weight,
                        avg_latency: n.avg_latency,
                    })
                    .collect(),
                edges: f
                    .edges
                    .iter()
                    .map(|e| ShardFlowEdge {
                        from: e.from.clone(),
                        to: e.to.clone(),
                        count: e.count,
                        cpu_change: e.cpu_change,
                    })
                    .collect(),
            })
            .collect(),
    }
}

/// Reduces a merged report to the diff engine's [`ReportSummary`] — the in-memory
/// twin of `schema::report_summary_from_json`, used by the serve query path so
/// regression verdicts match what `dprof diff` would say about the rendered files.
pub fn summary_from_merged(report: &MergedReport) -> ReportSummary {
    let mut types: Vec<TypeSummary> = Vec::new();
    for row in &report.data_profile {
        let mut summary = TypeSummary::absent(&row.name);
        summary.pct_of_l1_misses = row.pct_of_l1_misses;
        summary.bounce = row.bounce;
        summary.working_set_bytes = row.working_set_bytes;
        types.push(summary);
    }
    let find = |types: &mut Vec<TypeSummary>, name: &str| -> usize {
        match types.iter().position(|t| t.name == name) {
            Some(i) => i,
            None => {
                types.push(TypeSummary::absent(name));
                types.len() - 1
            }
        }
    };
    for row in &report.miss_classification {
        let i = find(&mut types, &row.name);
        types[i].miss_samples = row.miss_samples;
        types[i].invalidation = row.invalidation;
        types[i].conflict = row.conflict;
        types[i].capacity = row.capacity;
        types[i].dominant_miss = Some(row.dominant().to_string());
    }
    for row in &report.utilization.rows {
        let i = find(&mut types, &row.name);
        types[i].utilization_pct = row.utilization_pct;
        types[i].wasted_bytes = row.wasted_bytes;
        types[i].wasted_bytes_per_sec = row.wasted_bytes_per_sec;
        types[i].refetch_ratio = row.refetch_ratio;
    }
    for row in &report.working_set.rows {
        let i = find(&mut types, &row.name);
        types[i].working_set_bytes = row.avg_live_bytes;
    }
    for flow in &report.data_flows {
        let i = find(&mut types, &flow.type_name);
        types[i].core_crossings = flow.core_crossings;
    }
    ReportSummary {
        types,
        rps: report.aggregate_rps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(ordinal: u64, name: &str, l1: u64, pct: f64) -> ProfileShard {
        ProfileShard {
            ordinal,
            weight: l1 as f64,
            meta: ShardMeta {
                thread: ordinal as usize,
                seed: 100 + ordinal,
                requests: 10 * (ordinal + 1),
                rps: 5.0 * (ordinal + 1) as f64,
                profiling_fraction: 0.01,
                samples: 3 * l1,
                total_cycles: 1000 * (ordinal + 1),
            },
            data_profile: vec![ShardProfileRow {
                name: name.into(),
                description: "d".into(),
                working_set_bytes: 512.0,
                pct_of_l1_misses: pct,
                pct_of_miss_cycles: pct,
                bounce: false,
                samples: 3 * l1,
                l1_miss_samples: l1,
                threads_seen: 1,
            }],
            miss_classification: vec![ShardMissRow {
                name: name.into(),
                miss_samples: l1,
                invalidation: 0.5,
                conflict: 0.25,
                capacity: 0.25,
            }],
            utilization: ShardUtilization {
                rows: vec![ShardUtilizationRow {
                    name: name.into(),
                    description: "d".into(),
                    slots_fetched: 8 * l1,
                    slots_touched: 2 * l1,
                    refetch_slots: l1,
                    wasted_bytes_per_sec: 100.0 * l1 as f64,
                    origins: vec![ShardUtilizationOrigin {
                        origin: format!("cpu{ordinal}"),
                        slots_fetched: 8 * l1,
                        slots_touched: 2 * l1,
                    }],
                }],
                total_fetches: l1,
                total_refetches: l1 / 4,
                resolved_slots_fetched: 8 * l1,
                resolved_slots_touched: 2 * l1,
            },
            working_set: ShardWorkingSet {
                rows: vec![ShardWorkingSetRow {
                    name: name.into(),
                    description: "d".into(),
                    avg_live_bytes: 256.0,
                    avg_live_objects: 4.0,
                    peak_live_bytes: 512,
                    threads_seen: 1,
                }],
                cache_capacity: 1 << 18,
                cache_ways: 8,
                total_avg_bytes: 256.0,
                thread_count: 1,
                threads_exceeding_capacity: 0,
                conflict_sets: 0,
            },
            data_flows: vec![],
        }
    }

    #[test]
    fn finish_is_order_insensitive() {
        let shards = [
            shard(0, "a", 100, 60.0),
            shard(1, "b", 50, 40.0),
            shard(2, "a", 25, 90.0),
        ];
        let mut forward = StreamingMerge::new();
        for s in &shards {
            forward.absorb(s.clone());
        }
        let mut backward = StreamingMerge::new();
        for s in shards.iter().rev() {
            backward.absorb(s.clone());
        }
        assert_eq!(forward.finish(), backward.finish());
    }

    #[test]
    fn empty_sink_finishes_to_default() {
        assert_eq!(StreamingMerge::new().finish(), MergedReport::default());
    }

    #[test]
    fn compaction_preserves_counts() {
        let shards: Vec<ProfileShard> = (0..10).map(|i| shard(i, "a", 10 + i, 50.0)).collect();
        let mut unbounded = StreamingMerge::new();
        let mut bounded = StreamingMerge::with_compact_threshold(3);
        for s in &shards {
            unbounded.absorb(s.clone());
            bounded.absorb(s.clone());
        }
        assert!(bounded.shard_count() <= 3);
        assert_eq!(bounded.absorbed(), 10);
        let a = unbounded.finish();
        let b = bounded.finish();
        assert_eq!(a.total_requests, b.total_requests);
        assert_eq!(a.pooled_weight, b.pooled_weight);
        assert_eq!(
            a.data_profile[0].l1_miss_samples,
            b.data_profile[0].l1_miss_samples
        );
        assert_eq!(
            a.data_profile[0].threads_seen,
            b.data_profile[0].threads_seen
        );
        assert!(
            (a.data_profile[0].pct_of_l1_misses - b.data_profile[0].pct_of_l1_misses).abs() < 1e-9
        );
        assert!((a.working_set.total_avg_bytes - b.working_set.total_avg_bytes).abs() < 1e-9);
    }

    #[test]
    fn summary_from_merged_matches_rows() {
        let mut sink = StreamingMerge::new();
        sink.absorb(shard(0, "a", 100, 60.0));
        sink.absorb(shard(1, "b", 50, 40.0));
        let report = sink.finish();
        let summary = summary_from_merged(&report);
        let a = summary.get("a").unwrap();
        assert_eq!(a.miss_samples, 100);
        assert_eq!(a.dominant_miss.as_deref(), Some("invalidation"));
        assert_eq!(a.wasted_bytes, 8 * (8 * 100 - 2 * 100));
        assert!((a.utilization_pct - 25.0).abs() < 1e-9);
        assert_eq!(summary.rps, report.aggregate_rps);
    }

    #[test]
    fn utilization_pools_counts_and_sums_rates() {
        let mut sink = StreamingMerge::new();
        sink.absorb(shard(0, "a", 100, 60.0));
        sink.absorb(shard(1, "a", 50, 40.0));
        let report = sink.finish();
        let rows = &report.utilization.rows;
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.slots_fetched, 8 * 150);
        assert_eq!(row.slots_touched, 2 * 150);
        assert_eq!(row.refetch_slots, 150);
        assert_eq!(row.wasted_bytes, 8 * 6 * 150);
        // Parallel machines: wasted-bandwidth rates add.
        assert!((row.wasted_bytes_per_sec - 100.0 * 150.0).abs() < 1e-9);
        assert!((row.utilization_pct - 25.0).abs() < 1e-9);
        assert!((row.refetch_ratio - 0.125).abs() < 1e-9);
        // Origins keyed by label merge across shards (distinct cores here).
        assert_eq!(row.origins.len(), 2);
        assert_eq!(report.utilization.total_fetches, 150);
        assert_eq!(report.utilization.resolved_slots_fetched, 8 * 150);

        // Compaction keeps the pooled counts and summed rates exact.
        let base = shard_from_merged(&report, 0);
        let mut again = StreamingMerge::new();
        again.absorb(base);
        let r2 = again.finish();
        assert_eq!(r2.utilization, report.utilization);
    }
}
