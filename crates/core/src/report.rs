//! Textual rendering of DProf views in the style of the thesis' tables, plus the
//! [`diff`] module comparing two reports (the paper's before/after-fix methodology).

pub mod diff;

use crate::path_trace::PathTrace;
use crate::profiler::DprofProfile;
use crate::views::miss_class::MissClass;
use crate::views::{DataProfileRow, TypeMissClassification, UtilizationRow, WorkingSetView};
use sim_machine::SymbolTable;
use std::fmt::Write as _;

/// Formats a byte count the way the thesis tables do (e.g. "14.6MB", "128B").
pub fn format_bytes(bytes: f64) -> String {
    if bytes >= 1024.0 * 1024.0 {
        format!("{:.2}MB", bytes / (1024.0 * 1024.0))
    } else if bytes >= 1024.0 {
        format!("{:.1}KB", bytes / 1024.0)
    } else {
        format!("{:.0}B", bytes)
    }
}

/// Renders the combined working-set + data-profile table (Tables 6.1 / 6.4 / 6.5).
pub fn render_data_profile(rows: &[DataProfileRow], top: usize) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<16} {:<36} {:>12} {:>14} {:>8}",
        "Type name", "Description", "WS Size", "% of L1 misses", "Bounce"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(92)).unwrap();
    let mut total_ws = 0.0;
    let mut total_pct = 0.0;
    for r in rows.iter().take(top) {
        writeln!(
            out,
            "{:<16} {:<36} {:>12} {:>13.2}% {:>8}",
            r.name,
            truncate(&r.description, 36),
            format_bytes(r.working_set_bytes),
            r.pct_of_l1_misses,
            if r.bounce { "yes" } else { "no" }
        )
        .unwrap();
        total_ws += r.working_set_bytes;
        total_pct += r.pct_of_l1_misses;
    }
    writeln!(out, "{}", "-".repeat(92)).unwrap();
    writeln!(
        out,
        "{:<16} {:<36} {:>12} {:>13.2}% {:>8}",
        "Total",
        "",
        format_bytes(total_ws),
        total_pct,
        "-"
    )
    .unwrap();
    out
}

/// Renders the working-set view: per-type footprint plus the conflict-set summary.
pub fn render_working_set(view: &WorkingSetView, top: usize) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<16} {:>14} {:>14} {:>14}",
        "Type name", "Avg bytes", "Avg objects", "Peak bytes"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(62)).unwrap();
    for t in view.per_type.iter().take(top) {
        writeln!(
            out,
            "{:<16} {:>14} {:>14.1} {:>14}",
            t.name,
            format_bytes(t.avg_live_bytes),
            t.avg_live_objects,
            format_bytes(t.peak_live_bytes as f64)
        )
        .unwrap();
    }
    writeln!(out, "{}", "-".repeat(62)).unwrap();
    writeln!(
        out,
        "total working set {} vs cache capacity {} => {}",
        format_bytes(view.total_avg_bytes()),
        format_bytes(view.cache_capacity as f64),
        if view.exceeds_capacity() {
            "capacity pressure"
        } else {
            "fits"
        }
    )
    .unwrap();
    if view.conflict_sets.is_empty() {
        writeln!(out, "no over-subscribed associativity sets").unwrap();
    } else {
        writeln!(
            out,
            "{} over-subscribed associativity sets (top 3):",
            view.conflict_sets.len()
        )
        .unwrap();
        for s in view.conflict_sets.iter().take(3) {
            writeln!(
                out,
                "  set {:>4}: {} distinct lines",
                s.set_index, s.distinct_lines
            )
            .unwrap();
        }
    }
    out
}

/// Renders the miss-classification view.
pub fn render_miss_classification(rows: &[TypeMissClassification], top: usize) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<16} {:>10} {:>14} {:>10} {:>10}  Dominant",
        "Type name", "Misses", "Invalidation", "Conflict", "Capacity"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(86)).unwrap();
    for r in rows.iter().take(top) {
        writeln!(
            out,
            "{:<16} {:>10} {:>13.1}% {:>9.1}% {:>9.1}%  {:?}",
            r.name,
            r.miss_samples,
            100.0 * r.fraction(MissClass::Invalidation),
            100.0 * r.fraction(MissClass::Conflict),
            100.0 * r.fraction(MissClass::Capacity),
            r.dominant
        )
        .unwrap();
    }
    out
}

/// Renders the line-utilization view: types ranked by the bandwidth wasted on
/// fetched-but-untouched bytes.
pub fn render_utilization(rows: &[UtilizationRow], top: usize) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "{:<16} {:>8} {:>15} {:>12} {:>12} {:>9}  Origin",
        "Type name", "Util%", "95% CI", "Wasted", "Wasted/s", "Re-fetch"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(92)).unwrap();
    for r in rows.iter().take(top) {
        let origin = r.origins.first().map(|o| o.origin.as_str()).unwrap_or("-");
        writeln!(
            out,
            "{:<16} {:>7.1}% [{:>5.1}, {:>5.1}] {:>12} {:>10}/s {:>8.1}%  {}",
            r.name,
            r.utilization_pct,
            r.ci95_low,
            r.ci95_high,
            format_bytes(r.wasted_bytes as f64),
            format_bytes(r.wasted_bytes_per_sec),
            100.0 * r.refetch_ratio,
            origin
        )
        .unwrap();
    }
    out
}

/// Renders a path trace in the style of Table 4.1.
pub fn render_path_trace(trace: &PathTrace, symbols: &SymbolTable) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "path observed {} times, avg lifetime {:.0} cycles",
        trace.frequency, trace.avg_lifetime
    )
    .unwrap();
    writeln!(
        out,
        "{:>10}  {:<26} {:>10} {:>12}  {:<24} {:>10}",
        "timestamp", "program counter", "CPU change", "offsets", "cache hit", "avg time"
    )
    .unwrap();
    writeln!(out, "{}", "-".repeat(100)).unwrap();
    for e in &trace.entries {
        let offsets = e
            .offsets
            .iter()
            .map(|o| o.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let hit = e
            .stats
            .dominant_level()
            .map(|(name, p)| format!("{:.0}% {}", p * 100.0, name))
            .unwrap_or_else(|| "-".to_string());
        writeln!(
            out,
            "{:>10.0}  {:<26} {:>10} {:>12}  {:<24} {:>7.0} cyc",
            e.avg_timestamp,
            symbols.name(e.ip),
            if e.cpu_change { "yes" } else { "no" },
            offsets,
            hit,
            e.stats.avg_latency()
        )
        .unwrap();
    }
    out
}

/// Renders a complete profile: data profile, working set, miss classification, and the
/// core-crossing summary of every collected data-flow graph.
pub fn render_profile(profile: &DprofProfile, _symbols: &SymbolTable, top: usize) -> String {
    let mut out = String::new();
    writeln!(out, "=== Data profile ===").unwrap();
    out.push_str(&render_data_profile(&profile.data_profile, top));
    writeln!(out, "\n=== Working set ===").unwrap();
    out.push_str(&render_working_set(&profile.working_set, top));
    writeln!(out, "\n=== Miss classification ===").unwrap();
    out.push_str(&render_miss_classification(
        &profile.miss_classification,
        top,
    ));
    writeln!(out, "\n=== Line utilization ===").unwrap();
    out.push_str(&render_utilization(&profile.utilization.rows, top));
    writeln!(out, "\n=== Data flow (core crossings) ===").unwrap();
    for (ty, graph) in &profile.data_flows {
        let name = profile
            .data_profile
            .iter()
            .find(|r| r.type_id == *ty)
            .map(|r| r.name.clone())
            .unwrap_or_else(|| format!("type#{}", ty.0));
        let crossings = graph.cpu_crossing_edges();
        if crossings.is_empty() {
            writeln!(out, "{name}: no core transitions observed").unwrap();
        } else {
            for e in crossings.iter().take(3) {
                writeln!(
                    out,
                    "{name}: {} -> {} crosses cores (x{})",
                    graph.nodes[e.from].name, graph.nodes[e.to].name, e.count
                )
                .unwrap();
            }
        }
    }
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::TypeId;

    #[test]
    fn byte_formatting() {
        assert_eq!(format_bytes(128.0), "128B");
        assert_eq!(format_bytes(1536.0), "1.5KB");
        assert_eq!(format_bytes(14.6 * 1024.0 * 1024.0), "14.60MB");
    }

    #[test]
    fn data_profile_table_contains_rows_and_total() {
        let rows = vec![DataProfileRow {
            type_id: TypeId(0),
            name: "size-1024".into(),
            description: "packet payload".into(),
            working_set_bytes: 14.6 * 1024.0 * 1024.0,
            pct_of_l1_misses: 45.4,
            pct_of_miss_cycles: 50.0,
            bounce: true,
            samples: 1000,
            l1_miss_samples: 454,
            ci95_low: 42.4,
            ci95_high: 48.5,
            rank_stable: true,
        }];
        let t = render_data_profile(&rows, 10);
        assert!(t.contains("size-1024"));
        assert!(t.contains("45.40%"));
        assert!(t.contains("yes"));
        assert!(t.contains("Total"));
    }

    #[test]
    fn truncate_adds_ellipsis() {
        assert_eq!(truncate("short", 10), "short");
        let t = truncate("a very long description indeed", 10);
        assert!(t.chars().count() <= 10);
        assert!(t.ends_with('…'));
    }
}
