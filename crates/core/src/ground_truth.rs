//! Exact per-type miss profiles, resolved from a machine-level ground-truth tally.
//!
//! The simulated machine can count every memory operation ([`sim_cache::
//! GroundTruthTally`]) — something real IBS hardware cannot do — but the tally is
//! address-granular.  This module attributes each 8-byte granule to the data type
//! whose allocation most recently covered it (the same live-then-historical
//! resolution [`crate::sample::resolve_samples`] applies to IBS records, so the
//! sampled profile and the exact profile share one attribution rule) and aggregates
//! the counters into exact per-type rows.  The `dprof accuracy` harness compares
//! these rows against the sampled data profile to measure sampling fidelity.

use serde::{Deserialize, Serialize};
use sim_cache::GroundTruthTally;
use sim_kernel::{SlabAllocator, TypeId, TypeRegistry};
use std::collections::HashMap;

/// Exact (every-access) counters for one data type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruthRow {
    /// The type.
    pub type_id: TypeId,
    /// Type name.
    pub name: String,
    /// Human-readable description.
    pub description: String,
    /// Memory operations attributed to the type.
    pub accesses: u64,
    /// Operations that missed the local L1.
    pub l1_misses: u64,
    /// Total worst-line latency cycles of those misses.
    pub miss_cycles: u64,
    /// Operations satisfied by a foreign core's cache.
    pub remote_fetches: u64,
    /// Share of all resolved L1 misses, percent (the exact analogue of the sampled
    /// data profile's `% of L1 misses` column).
    pub pct_of_l1_misses: f64,
    /// Share of all resolved miss cycles, percent.
    pub pct_of_miss_cycles: f64,
}

/// The exact per-type profile of one sampling phase.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GroundTruthProfile {
    /// Per-type rows, ranked by L1 misses (descending; name breaks ties).
    pub rows: Vec<GroundTruthRow>,
    /// Every operation tallied during the phase, resolvable or not.
    pub total_accesses: u64,
    /// Every L1 miss tallied during the phase, resolvable or not.
    pub total_l1_misses: u64,
    /// L1 misses attributed to a type (the share denominator; unresolved granules
    /// are dropped exactly as unresolvable IBS samples are).
    pub resolved_l1_misses: u64,
    /// The exact utilization view (every line fill counted), built from the tally's
    /// embedded [`sim_cache::UtilizationTally`].  The accuracy harness compares the
    /// sampled utilization rankings against this.
    #[serde(default)]
    pub utilization: crate::views::UtilizationProfile,
}

impl GroundTruthProfile {
    /// The row for a type name, if present.
    pub fn row(&self, name: &str) -> Option<&GroundTruthRow> {
        self.rows.iter().find(|r| r.name == name)
    }

    /// The rank (0 = most misses) of a type name.
    pub fn rank_of(&self, name: &str) -> Option<usize> {
        self.rows.iter().position(|r| r.name == name)
    }
}

/// Resolves a tally into exact per-type rows using the allocator's address set.
///
/// Attribution walks the address-set log oldest-to-newest, so a granule whose
/// address was recycled across allocations lands on the *most recent* covering
/// object — the identical rule `resolve_samples` applies (live object first, then
/// newest historical record), giving the sampled and exact profiles the same
/// attribution bias and making their comparison apples-to-apples.
pub fn resolve_ground_truth(
    tally: &GroundTruthTally,
    allocator: &SlabAllocator,
    registry: &TypeRegistry,
) -> GroundTruthProfile {
    // Which type covers each tallied granule?  One pass over the allocation log in
    // record order; later records overwrite earlier ones.
    let mut attribution: HashMap<u64, TypeId> = HashMap::with_capacity(tally.len());
    let tallied: std::collections::HashSet<u64> = tally.iter().map(|(g, _)| g).collect();
    for r in allocator.address_set() {
        let mut g = r.addr & !7;
        let end = r.addr + r.size;
        while g < end {
            if tallied.contains(&g) {
                attribution.insert(g, r.type_id);
            }
            g += 8;
        }
    }

    #[derive(Default)]
    struct Acc {
        accesses: u64,
        l1_misses: u64,
        miss_cycles: u64,
        remote_fetches: u64,
    }
    let mut acc: HashMap<TypeId, Acc> = HashMap::new();
    let mut resolved_l1_misses = 0u64;
    let mut resolved_miss_cycles = 0u64;
    for (granule, counts) in tally.iter() {
        let Some(&ty) = attribution.get(&granule) else {
            continue;
        };
        let a = acc.entry(ty).or_default();
        a.accesses += counts.accesses;
        a.l1_misses += counts.l1_misses;
        a.miss_cycles += counts.miss_cycles;
        a.remote_fetches += counts.remote_fetches;
        resolved_l1_misses += counts.l1_misses;
        resolved_miss_cycles += counts.miss_cycles;
    }

    let mut rows: Vec<GroundTruthRow> = acc
        .into_iter()
        .map(|(ty, a)| {
            let info = registry.info(ty);
            GroundTruthRow {
                type_id: ty,
                name: info.name.clone(),
                description: info.description.clone(),
                accesses: a.accesses,
                l1_misses: a.l1_misses,
                miss_cycles: a.miss_cycles,
                remote_fetches: a.remote_fetches,
                pct_of_l1_misses: if resolved_l1_misses == 0 {
                    0.0
                } else {
                    100.0 * a.l1_misses as f64 / resolved_l1_misses as f64
                },
                pct_of_miss_cycles: if resolved_miss_cycles == 0 {
                    0.0
                } else {
                    100.0 * a.miss_cycles as f64 / resolved_miss_cycles as f64
                },
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.l1_misses
            .cmp(&a.l1_misses)
            .then_with(|| a.name.cmp(&b.name))
    });

    GroundTruthProfile {
        rows,
        total_accesses: tally.total_accesses,
        total_l1_misses: tally.total_l1_misses,
        resolved_l1_misses,
        utilization: crate::views::UtilizationProfile::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cache::{AccessKind, HitLevel};
    use sim_kernel::KernelTypes;
    use sim_machine::{Machine, MachineConfig};

    #[test]
    fn tally_resolves_to_types_with_exact_shares() {
        let mut m = Machine::new(MachineConfig::small_test());
        let mut reg = TypeRegistry::new();
        let kt = KernelTypes::register(&mut reg);
        let cores = m.cores();
        let mut alloc = SlabAllocator::new(&mut m, &mut reg, cores);
        let skb = alloc.alloc(&mut m, &reg, 0, kt.skbuff);
        let sock = alloc.alloc(&mut m, &reg, 0, kt.udp_sock);

        let mut tally = GroundTruthTally::new();
        // Three skbuff misses, one udp_sock miss, one unresolvable miss.
        tally.record(skb, AccessKind::Read, HitLevel::Dram, 250);
        tally.record(skb + 8, AccessKind::Write, HitLevel::RemoteCache, 200);
        tally.record(skb + 8, AccessKind::Read, HitLevel::L2, 15);
        tally.record(sock, AccessKind::Read, HitLevel::Dram, 250);
        tally.record(0xdead_beef_0000, AccessKind::Read, HitLevel::Dram, 250);
        // And a pure hit, which must not contribute to miss shares.
        tally.record(skb, AccessKind::Read, HitLevel::L1, 3);

        let gt = resolve_ground_truth(&tally, &alloc, &reg);
        assert_eq!(gt.total_accesses, 6);
        assert_eq!(gt.total_l1_misses, 5);
        assert_eq!(gt.resolved_l1_misses, 4);
        assert_eq!(gt.rows[0].name, "skbuff");
        assert_eq!(gt.rows[0].l1_misses, 3);
        assert_eq!(gt.rows[0].remote_fetches, 1);
        assert!((gt.rows[0].pct_of_l1_misses - 75.0).abs() < 1e-9);
        assert_eq!(gt.rank_of("skbuff"), Some(0));
        let sock_row = gt.row("udp-sock").expect("udp_sock resolved");
        assert!((sock_row.pct_of_l1_misses - 25.0).abs() < 1e-9);
    }

    #[test]
    fn address_reuse_attributes_to_the_most_recent_object() {
        let mut m = Machine::new(MachineConfig::small_test());
        let mut reg = TypeRegistry::new();
        let kt = KernelTypes::register(&mut reg);
        let cores = m.cores();
        let mut alloc = SlabAllocator::new(&mut m, &mut reg, cores);
        let first = alloc.alloc(&mut m, &reg, 0, kt.skbuff);
        alloc.free(&mut m, 0, first);
        // Same size class: the address may be recycled for another skbuff-sized type.
        let second = alloc.alloc(&mut m, &reg, 0, kt.skbuff);

        let mut tally = GroundTruthTally::new();
        tally.record(second, AccessKind::Read, HitLevel::Dram, 250);
        let gt = resolve_ground_truth(&tally, &alloc, &reg);
        assert_eq!(gt.resolved_l1_misses, 1);
        assert_eq!(gt.rows[0].name, "skbuff");
    }
}
