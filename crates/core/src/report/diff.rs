//! Differential report comparison — the paper's before/after methodology as code.
//!
//! Every DProf case study ends the same way: profile the workload, localise the
//! offending data type, apply a fix, re-profile, and check that the bottleneck is gone
//! (memcached's TX-queue false sharing in §6.1, Apache's working-set explosion in
//! §6.2).  This module turns that comparison into a first-class operation: two
//! [`ReportSummary`]s go in, a structured [`ReportDiff`] comes out — per-type deltas in
//! miss share, miss-class mix, working-set rank and data-flow core crossings, plus a
//! threshold-based [`Verdict`] on the focus type ("bottleneck eliminated / moved /
//! unchanged").
//!
//! [`ReportSummary`] is deliberately name-keyed and self-contained: it can be built
//! from an in-process [`DprofProfile`] (the scenario-oracle harness does this) or
//! parsed back out of a `dprof-report/v1` JSON document (the `dprof diff` subcommand
//! does that), so recorded reports from different machines remain comparable.

use crate::profiler::DprofProfile;
use crate::views::miss_class::MissClass;
use serde::{Deserialize, Serialize};

/// Spelling of a miss class as it appears in reports ("invalidation" / "conflict" /
/// "capacity").
pub fn miss_class_key(class: MissClass) -> &'static str {
    match class {
        MissClass::Invalidation => "invalidation",
        MissClass::Conflict => "conflict",
        MissClass::Capacity => "capacity",
    }
}

/// Everything the diff needs to know about one data type in one report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypeSummary {
    /// Type name (the cross-report join key).
    pub name: String,
    /// Share of L1-miss samples attributed to the type, in percent.
    pub pct_of_l1_misses: f64,
    /// Miss samples behind the classification (0 when unknown).
    pub miss_samples: u64,
    /// Whether the type was flagged as bouncing between cores.
    pub bounce: bool,
    /// Average live bytes (working-set footprint).
    pub working_set_bytes: f64,
    /// Fraction of misses classified as invalidation.
    pub invalidation: f64,
    /// Fraction of misses classified as associativity conflict.
    pub conflict: f64,
    /// Fraction of misses classified as capacity.
    pub capacity: f64,
    /// Dominant miss class, when a classification exists.
    pub dominant_miss: Option<String>,
    /// Core-crossing traversals in the type's data-flow graph.
    pub core_crossings: u64,
    /// Line-utilization percentage from the utilization view (0 when the type has no
    /// utilization row).
    #[serde(default)]
    pub utilization_pct: f64,
    /// Bytes fetched for the type but never touched before eviction.
    #[serde(default)]
    pub wasted_bytes: u64,
    /// Wasted bytes normalised to simulated wall-clock time.
    #[serde(default)]
    pub wasted_bytes_per_sec: f64,
    /// Share of the type's fetched slots that were re-fetches of evicted lines.
    #[serde(default)]
    pub refetch_ratio: f64,
}

impl TypeSummary {
    /// A neutral (all-zero) summary for a type that does not appear in a report.
    pub fn absent(name: &str) -> TypeSummary {
        TypeSummary {
            name: name.to_string(),
            pct_of_l1_misses: 0.0,
            miss_samples: 0,
            bounce: false,
            working_set_bytes: 0.0,
            invalidation: 0.0,
            conflict: 0.0,
            capacity: 0.0,
            dominant_miss: None,
            core_crossings: 0,
            utilization_pct: 0.0,
            wasted_bytes: 0,
            wasted_bytes_per_sec: 0.0,
            refetch_ratio: 0.0,
        }
    }
}

/// The per-type digest of one report, the input to [`diff`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReportSummary {
    /// One row per type, in no particular order (the diff never depends on it).
    pub types: Vec<TypeSummary>,
    /// Aggregate request throughput (requests per simulated second) of the run the
    /// report came from, or 0 when unknown (e.g. a summary built from a bare
    /// profile).  When both sides of a diff carry it, the diff reports the realized
    /// gain — the counterpart to the what-if engine's predicted gain.
    pub rps: f64,
}

impl ReportSummary {
    /// Builds the summary straight from an in-process profile.
    pub fn from_profile(profile: &DprofProfile) -> ReportSummary {
        let mut types: Vec<TypeSummary> = profile
            .data_profile
            .iter()
            .map(|row| {
                let class = profile
                    .miss_classification
                    .iter()
                    .find(|c| c.type_id == row.type_id);
                let crossings = profile
                    .data_flows
                    .get(&row.type_id)
                    .map(|g| g.cpu_crossing_edges().iter().map(|e| e.count).sum())
                    .unwrap_or(0);
                let ws = profile
                    .working_set
                    .for_type(row.type_id)
                    .map(|t| t.avg_live_bytes)
                    .unwrap_or(row.working_set_bytes);
                let util = profile
                    .utilization
                    .rows
                    .iter()
                    .find(|u| u.type_id == row.type_id);
                TypeSummary {
                    name: row.name.clone(),
                    pct_of_l1_misses: row.pct_of_l1_misses,
                    miss_samples: class.map(|c| c.miss_samples).unwrap_or(0),
                    bounce: row.bounce,
                    working_set_bytes: ws,
                    invalidation: class
                        .map(|c| c.fraction(MissClass::Invalidation))
                        .unwrap_or(0.0),
                    conflict: class
                        .map(|c| c.fraction(MissClass::Conflict))
                        .unwrap_or(0.0),
                    capacity: class
                        .map(|c| c.fraction(MissClass::Capacity))
                        .unwrap_or(0.0),
                    dominant_miss: class.map(|c| miss_class_key(c.dominant).to_string()),
                    core_crossings: crossings,
                    utilization_pct: util.map(|u| u.utilization_pct).unwrap_or(0.0),
                    wasted_bytes: util.map(|u| u.wasted_bytes).unwrap_or(0),
                    wasted_bytes_per_sec: util.map(|u| u.wasted_bytes_per_sec).unwrap_or(0.0),
                    refetch_ratio: util.map(|u| u.refetch_ratio).unwrap_or(0.0),
                }
            })
            .collect();
        // Types that only show up in the working-set view (footprint without samples)
        // still matter for rank deltas.
        for t in &profile.working_set.per_type {
            if !types.iter().any(|row| row.name == t.name) {
                let mut row = TypeSummary::absent(&t.name);
                row.working_set_bytes = t.avg_live_bytes;
                types.push(row);
            }
        }
        // Types that only show up in the utilization view (fetched lines without a
        // single miss *sample*) still matter for the utilization-delta verdict.
        for u in &profile.utilization.rows {
            if let Some(row) = types.iter_mut().find(|row| row.name == u.name) {
                if row.wasted_bytes == 0 && row.utilization_pct == 0.0 {
                    row.utilization_pct = u.utilization_pct;
                    row.wasted_bytes = u.wasted_bytes;
                    row.wasted_bytes_per_sec = u.wasted_bytes_per_sec;
                    row.refetch_ratio = u.refetch_ratio;
                }
            } else {
                let mut row = TypeSummary::absent(&u.name);
                row.utilization_pct = u.utilization_pct;
                row.wasted_bytes = u.wasted_bytes;
                row.wasted_bytes_per_sec = u.wasted_bytes_per_sec;
                row.refetch_ratio = u.refetch_ratio;
                types.push(row);
            }
        }
        ReportSummary { types, rps: 0.0 }
    }

    /// Sets the run's aggregate throughput (builder-style), enabling realized-gain
    /// computation in [`diff`].
    #[must_use]
    pub fn with_rps(mut self, rps: f64) -> ReportSummary {
        self.rps = rps;
        self
    }

    /// The summary row for a type name.
    pub fn get(&self, name: &str) -> Option<&TypeSummary> {
        self.types.iter().find(|t| t.name == name)
    }

    /// The type with the largest miss share (ties break on name, so the answer does not
    /// depend on row order).
    pub fn top_type(&self) -> Option<&TypeSummary> {
        self.types.iter().min_by(|a, b| {
            b.pct_of_l1_misses
                .partial_cmp(&a.pct_of_l1_misses)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.name.cmp(&b.name))
        })
    }

    /// 0-based rank of a type by working-set footprint (largest first, name
    /// tie-break); `None` if the type is absent.
    pub fn working_set_rank(&self, name: &str) -> Option<usize> {
        let row = self.get(name)?;
        let mut rank = 0;
        for t in &self.types {
            let bigger = t.working_set_bytes > row.working_set_bytes
                || (t.working_set_bytes == row.working_set_bytes && t.name.as_str() < name);
            if bigger {
                rank += 1;
            }
        }
        Some(rank)
    }
}

/// Thresholds steering the [`Verdict`] classification.
///
/// The verdict compares the focus type's **miss magnitude** across the two reports:
/// its miss-sample count when both reports carry classification counts (the paper's
/// before/after tables compare absolute misses at fixed load), falling back to its
/// share of L1 misses when counts are unavailable.  Shares alone cannot express a
/// fixed bottleneck whose removal shrinks the whole miss pool — the survivor's share
/// of almost nothing approaches 100 %.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DiffThresholds {
    /// Relative drop in the focus type's miss magnitude needed to call the bottleneck
    /// eliminated (0.6 = it fell by at least 60 %).
    pub eliminated_drop: f64,
    /// Relative change below which the bottleneck counts as unchanged.
    pub unchanged_band: f64,
    /// A *different* type whose miss-sample count reaches this fraction of the focus
    /// type's old count **and** at least doubled its own count is a moved bottleneck.
    pub moved_count_factor: f64,
    /// Focus shares below this (percent points) are noise; the verdict is `Unchanged`.
    pub min_share_points: f64,
    /// Focus miss-sample counts below this are noise; the verdict is `Unchanged`.
    pub min_focus_samples: u64,
    /// When the focus type's miss magnitude is below its floor, the verdict falls
    /// back to the utilization axis (wasted bytes) — layout bugs can be invisible to
    /// miss counts.  Focus wasted-bytes magnitudes below this are noise.
    #[serde(default = "default_min_focus_wasted_bytes")]
    pub min_focus_wasted_bytes: u64,
}

fn default_min_focus_wasted_bytes() -> u64 {
    512
}

impl Default for DiffThresholds {
    fn default() -> Self {
        DiffThresholds {
            eliminated_drop: 0.6,
            unchanged_band: 0.15,
            moved_count_factor: 0.6,
            min_share_points: 1.0,
            min_focus_samples: 10,
            min_focus_wasted_bytes: default_min_focus_wasted_bytes(),
        }
    }
}

/// The outcome of comparing the focus type across two reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// The focus type's miss share collapsed and no other type took its place.
    Eliminated,
    /// The focus type's share collapsed but another type's misses grew to fill the gap.
    Moved,
    /// The share dropped noticeably, short of elimination.
    Reduced,
    /// The share is within the no-change band (or there was no bottleneck to begin
    /// with).
    Unchanged,
    /// The share grew.
    Worsened,
}

impl Verdict {
    /// The stable lowercase spelling used in JSON and CI assertions.
    pub fn key(self) -> &'static str {
        match self {
            Verdict::Eliminated => "eliminated",
            Verdict::Moved => "moved",
            Verdict::Reduced => "reduced",
            Verdict::Unchanged => "unchanged",
            Verdict::Worsened => "worsened",
        }
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// Per-type differences between the two reports.  For every numeric field the
/// convention is `delta = b - a`, so swapping the diff's arguments negates every delta.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TypeDelta {
    /// Type name.
    pub name: String,
    /// Whether the type appears in report A / report B at all.
    pub in_a: bool,
    /// See [`TypeDelta::in_a`].
    pub in_b: bool,
    /// Miss share in A, percent.
    pub pct_a: f64,
    /// Miss share in B, percent.
    pub pct_b: f64,
    /// `pct_b - pct_a`.
    pub delta_pct: f64,
    /// Miss samples in A.
    pub miss_samples_a: u64,
    /// Miss samples in B.
    pub miss_samples_b: u64,
    /// `miss_samples_b - miss_samples_a`.
    pub delta_miss_samples: i64,
    /// Invalidation-fraction change.
    pub delta_invalidation: f64,
    /// Conflict-fraction change.
    pub delta_conflict: f64,
    /// Capacity-fraction change.
    pub delta_capacity: f64,
    /// Dominant miss class in A.
    pub dominant_a: Option<String>,
    /// Dominant miss class in B.
    pub dominant_b: Option<String>,
    /// Working-set rank in A (0 = largest footprint).
    pub ws_rank_a: Option<usize>,
    /// Working-set rank in B.
    pub ws_rank_b: Option<usize>,
    /// Working-set byte change.
    pub delta_working_set_bytes: f64,
    /// Data-flow core crossings in A.
    pub core_crossings_a: u64,
    /// Data-flow core crossings in B.
    pub core_crossings_b: u64,
    /// `core_crossings_b - core_crossings_a`.
    pub delta_core_crossings: i64,
    /// Bounce flag in A.
    pub bounce_a: bool,
    /// Bounce flag in B.
    pub bounce_b: bool,
    /// Line-utilization percentage in A.
    #[serde(default)]
    pub utilization_pct_a: f64,
    /// Line-utilization percentage in B.
    #[serde(default)]
    pub utilization_pct_b: f64,
    /// Wasted bytes in A.
    #[serde(default)]
    pub wasted_bytes_a: u64,
    /// Wasted bytes in B.
    #[serde(default)]
    pub wasted_bytes_b: u64,
    /// `wasted_bytes_b - wasted_bytes_a`.
    #[serde(default)]
    pub delta_wasted_bytes: i64,
}

/// The structured comparison of two reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportDiff {
    /// The type the verdict is about.
    pub focus: String,
    /// The verdict on the focus type.
    pub verdict: Verdict,
    /// Focus miss share in A, percent.
    pub focus_share_a: f64,
    /// Focus miss share in B, percent.
    pub focus_share_b: f64,
    /// Focus miss-sample count in A (0 when the report carries no counts).
    pub focus_misses_a: u64,
    /// Focus miss-sample count in B.
    pub focus_misses_b: u64,
    /// When the verdict is [`Verdict::Moved`], the type the bottleneck moved to.
    pub moved_to: Option<String>,
    /// Realized fractional reduction in per-request time going from A to B
    /// (`1 - rps_a / rps_b`), when both summaries carry throughput.  Positive when B
    /// is faster; comparable to the what-if engine's predicted gain.
    pub realized_gain: Option<f64>,
    /// Per-type deltas over the union of both reports' types, ordered by
    /// `max(pct_a, pct_b)` descending (name tie-break) — stable under row reordering
    /// of either input and symmetric under argument swap.
    pub types: Vec<TypeDelta>,
}

impl ReportDiff {
    /// True when the diff carries no signal: every delta is (numerically) zero and
    /// nothing appeared or disappeared.  `diff(a, a)` is always neutral.
    pub fn is_neutral(&self) -> bool {
        const EPS: f64 = 1e-9;
        self.verdict == Verdict::Unchanged
            && self.types.iter().all(|t| {
                t.in_a == t.in_b
                    && t.delta_pct.abs() < EPS
                    && t.delta_miss_samples == 0
                    && t.delta_invalidation.abs() < EPS
                    && t.delta_conflict.abs() < EPS
                    && t.delta_capacity.abs() < EPS
                    && t.delta_working_set_bytes.abs() < EPS
                    && t.delta_core_crossings == 0
                    && t.delta_wasted_bytes == 0
                    && (t.utilization_pct_b - t.utilization_pct_a).abs() < EPS
                    && t.dominant_a == t.dominant_b
                    && t.ws_rank_a == t.ws_rank_b
                    && t.bounce_a == t.bounce_b
            })
    }

    /// The delta row for a type name.
    pub fn for_type(&self, name: &str) -> Option<&TypeDelta> {
        self.types.iter().find(|t| t.name == name)
    }
}

/// Compares report `b` against baseline `a`.
///
/// `focus` picks the type the verdict is about; `None` focuses the top miss type of
/// `a`.  Uses [`DiffThresholds::default`]; see [`diff_with`] to tune them.
pub fn diff(a: &ReportSummary, b: &ReportSummary, focus: Option<&str>) -> ReportDiff {
    diff_with(a, b, focus, &DiffThresholds::default())
}

/// [`diff`] with explicit thresholds.
pub fn diff_with(
    a: &ReportSummary,
    b: &ReportSummary,
    focus: Option<&str>,
    thresholds: &DiffThresholds,
) -> ReportDiff {
    let focus_name = focus
        .map(|s| s.to_string())
        .or_else(|| a.top_type().map(|t| t.name.clone()))
        .unwrap_or_default();

    // Union of type names, deduplicated; ordering is fixed later from values only.
    let mut names: Vec<&str> = a
        .types
        .iter()
        .chain(b.types.iter())
        .map(|t| t.name.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();

    let mut types: Vec<TypeDelta> = names
        .into_iter()
        .map(|name| {
            let ra = a.get(name);
            let rb = b.get(name);
            let absent = TypeSummary::absent(name);
            let sa = ra.unwrap_or(&absent);
            let sb = rb.unwrap_or(&absent);
            TypeDelta {
                name: name.to_string(),
                in_a: ra.is_some(),
                in_b: rb.is_some(),
                pct_a: sa.pct_of_l1_misses,
                pct_b: sb.pct_of_l1_misses,
                delta_pct: sb.pct_of_l1_misses - sa.pct_of_l1_misses,
                miss_samples_a: sa.miss_samples,
                miss_samples_b: sb.miss_samples,
                delta_miss_samples: sb.miss_samples as i64 - sa.miss_samples as i64,
                delta_invalidation: sb.invalidation - sa.invalidation,
                delta_conflict: sb.conflict - sa.conflict,
                delta_capacity: sb.capacity - sa.capacity,
                dominant_a: sa.dominant_miss.clone(),
                dominant_b: sb.dominant_miss.clone(),
                ws_rank_a: a.working_set_rank(name),
                ws_rank_b: b.working_set_rank(name),
                delta_working_set_bytes: sb.working_set_bytes - sa.working_set_bytes,
                core_crossings_a: sa.core_crossings,
                core_crossings_b: sb.core_crossings,
                delta_core_crossings: sb.core_crossings as i64 - sa.core_crossings as i64,
                bounce_a: sa.bounce,
                bounce_b: sb.bounce,
                utilization_pct_a: sa.utilization_pct,
                utilization_pct_b: sb.utilization_pct,
                wasted_bytes_a: sa.wasted_bytes,
                wasted_bytes_b: sb.wasted_bytes,
                delta_wasted_bytes: sb.wasted_bytes as i64 - sa.wasted_bytes as i64,
            }
        })
        .collect();
    types.sort_by(|x, y| {
        let kx = x.pct_a.max(x.pct_b);
        let ky = y.pct_a.max(y.pct_b);
        ky.partial_cmp(&kx)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.name.cmp(&y.name))
    });

    let share_a = a
        .get(&focus_name)
        .map(|t| t.pct_of_l1_misses)
        .unwrap_or(0.0);
    let share_b = b
        .get(&focus_name)
        .map(|t| t.pct_of_l1_misses)
        .unwrap_or(0.0);
    let (verdict, moved_to) = classify(a, b, &focus_name, share_a, share_b, thresholds);

    ReportDiff {
        focus: focus_name.clone(),
        verdict,
        focus_share_a: share_a,
        focus_share_b: share_b,
        focus_misses_a: a.get(&focus_name).map(|t| t.miss_samples).unwrap_or(0),
        focus_misses_b: b.get(&focus_name).map(|t| t.miss_samples).unwrap_or(0),
        moved_to,
        realized_gain: (a.rps > 0.0 && b.rps > 0.0).then(|| 1.0 - a.rps / b.rps),
        types,
    }
}

fn classify(
    a: &ReportSummary,
    b: &ReportSummary,
    focus: &str,
    share_a: f64,
    share_b: f64,
    th: &DiffThresholds,
) -> (Verdict, Option<String>) {
    // Prefer absolute miss-sample counts when both reports carry them; a report with
    // no classification counts anywhere (e.g. rendered without the
    // miss-classification view) falls back to shares.
    let counts_available =
        a.types.iter().any(|t| t.miss_samples > 0) && b.types.iter().any(|t| t.miss_samples > 0);
    let (magnitude_a, magnitude_b, floor) = if counts_available {
        (
            a.get(focus).map(|t| t.miss_samples).unwrap_or(0) as f64,
            b.get(focus).map(|t| t.miss_samples).unwrap_or(0) as f64,
            th.min_focus_samples as f64,
        )
    } else {
        (share_a, share_b, th.min_share_points)
    };
    if magnitude_a < floor {
        // No miss-magnitude bottleneck on the focus type — fall back to the
        // utilization axis: a layout bug can waste bandwidth on every fetch while
        // staying invisible to miss counts.
        return classify_utilization(a, b, focus, th);
    }
    let rel = (magnitude_b - magnitude_a) / magnitude_a;
    if rel.abs() <= th.unchanged_band {
        return (Verdict::Unchanged, None);
    }
    if rel > 0.0 {
        return (Verdict::Worsened, None);
    }
    if rel > -th.eliminated_drop {
        return (Verdict::Reduced, None);
    }
    // The focus collapsed; decide eliminated vs moved.  Shares always re-normalise to
    // 100 %, so a *rising share* of a shrinking miss pool is not a new bottleneck —
    // only a type whose absolute miss-sample count grew to rival the old focus counts.
    let focus_misses_a = a.get(focus).map(|t| t.miss_samples).unwrap_or(0);
    let moved_to = b
        .types
        .iter()
        .filter(|t| t.name != focus && t.miss_samples > 0 && focus_misses_a > 0)
        .filter(|t| {
            let before = a.get(&t.name).map(|p| p.miss_samples).unwrap_or(0);
            t.miss_samples as f64 >= th.moved_count_factor * focus_misses_a as f64
                && t.miss_samples >= before.saturating_mul(2).max(before + 1)
        })
        .max_by(|x, y| {
            x.miss_samples
                .cmp(&y.miss_samples)
                .then_with(|| y.name.cmp(&x.name))
        })
        .map(|t| t.name.clone());
    match moved_to {
        Some(name) => (Verdict::Moved, Some(name)),
        None => (Verdict::Eliminated, None),
    }
}

/// The utilization-axis verdict: compares the focus type's wasted bytes across the
/// two reports.  Used when the focus has no miss-magnitude bottleneck.
fn classify_utilization(
    a: &ReportSummary,
    b: &ReportSummary,
    focus: &str,
    th: &DiffThresholds,
) -> (Verdict, Option<String>) {
    let wasted_a = a.get(focus).map(|t| t.wasted_bytes).unwrap_or(0);
    let wasted_b = b.get(focus).map(|t| t.wasted_bytes).unwrap_or(0);
    if wasted_a < th.min_focus_wasted_bytes {
        return (Verdict::Unchanged, None);
    }
    let rel = (wasted_b as f64 - wasted_a as f64) / wasted_a as f64;
    if rel.abs() <= th.unchanged_band {
        return (Verdict::Unchanged, None);
    }
    if rel > 0.0 {
        return (Verdict::Worsened, None);
    }
    if rel > -th.eliminated_drop {
        return (Verdict::Reduced, None);
    }
    // The waste collapsed; a *different* type whose wasted bytes grew to rival the
    // old focus is a moved bottleneck (same shape as the miss-count rule).
    let moved_to = b
        .types
        .iter()
        .filter(|t| t.name != focus && t.wasted_bytes > 0)
        .filter(|t| {
            let before = a.get(&t.name).map(|p| p.wasted_bytes).unwrap_or(0);
            t.wasted_bytes as f64 >= th.moved_count_factor * wasted_a as f64
                && t.wasted_bytes >= before.saturating_mul(2).max(before + 1)
        })
        .max_by(|x, y| {
            x.wasted_bytes
                .cmp(&y.wasted_bytes)
                .then_with(|| y.name.cmp(&x.name))
        })
        .map(|t| t.name.clone());
    match moved_to {
        Some(name) => (Verdict::Moved, Some(name)),
        None => (Verdict::Eliminated, None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ty(name: &str, pct: f64, misses: u64) -> TypeSummary {
        TypeSummary {
            name: name.to_string(),
            pct_of_l1_misses: pct,
            miss_samples: misses,
            bounce: false,
            working_set_bytes: pct * 100.0,
            invalidation: 0.5,
            conflict: 0.25,
            capacity: 0.25,
            dominant_miss: Some("invalidation".to_string()),
            core_crossings: 0,
            utilization_pct: 0.0,
            wasted_bytes: 0,
            wasted_bytes_per_sec: 0.0,
            refetch_ratio: 0.0,
        }
    }

    fn ty_util(name: &str, utilization_pct: f64, wasted_bytes: u64) -> TypeSummary {
        let mut t = TypeSummary::absent(name);
        t.utilization_pct = utilization_pct;
        t.wasted_bytes = wasted_bytes;
        t.wasted_bytes_per_sec = wasted_bytes as f64 * 10.0;
        t
    }

    fn summary(rows: &[TypeSummary]) -> ReportSummary {
        ReportSummary {
            types: rows.to_vec(),
            rps: 0.0,
        }
    }

    #[test]
    fn self_diff_is_neutral_and_unchanged() {
        let a = summary(&[ty("skbuff", 60.0, 600), ty("payload", 40.0, 400)]);
        let d = diff(&a, &a, None);
        assert_eq!(d.verdict, Verdict::Unchanged);
        assert!(d.is_neutral());
        assert_eq!(d.focus, "skbuff");
    }

    #[test]
    fn collapse_without_replacement_is_eliminated() {
        let a = summary(&[ty("hot", 70.0, 700), ty("skbuff", 30.0, 300)]);
        // Misses on `hot` vanish; skbuff's share rises to ~100 % but its *count* does
        // not grow — a shrinking pie, not a moved bottleneck.
        let b = summary(&[ty("hot", 3.0, 9), ty("skbuff", 97.0, 310)]);
        let d = diff(&a, &b, Some("hot"));
        assert_eq!(d.verdict, Verdict::Eliminated);
        assert!(d.moved_to.is_none());
    }

    #[test]
    fn collapse_with_growing_rival_is_moved() {
        let a = summary(&[ty("hot", 70.0, 700), ty("other", 10.0, 100)]);
        let b = summary(&[ty("hot", 5.0, 50), ty("other", 80.0, 800)]);
        let d = diff(&a, &b, Some("hot"));
        assert_eq!(d.verdict, Verdict::Moved);
        assert_eq!(d.moved_to.as_deref(), Some("other"));
    }

    #[test]
    fn small_changes_are_unchanged_and_growth_is_worsened() {
        let a = summary(&[ty("hot", 50.0, 500)]);
        assert_eq!(
            diff(&a, &summary(&[ty("hot", 53.0, 530)]), Some("hot")).verdict,
            Verdict::Unchanged
        );
        assert_eq!(
            diff(&a, &summary(&[ty("hot", 75.0, 900)]), Some("hot")).verdict,
            Verdict::Worsened
        );
        assert_eq!(
            diff(&a, &summary(&[ty("hot", 30.0, 300)]), Some("hot")).verdict,
            Verdict::Reduced
        );
    }

    #[test]
    fn deltas_are_signed_b_minus_a_and_cover_the_union() {
        let a = summary(&[ty("only-a", 10.0, 100), ty("both", 20.0, 200)]);
        let b = summary(&[ty("both", 30.0, 320), ty("only-b", 5.0, 50)]);
        let d = diff(&a, &b, Some("both"));
        assert_eq!(d.types.len(), 3);
        let both = d.for_type("both").unwrap();
        assert!((both.delta_pct - 10.0).abs() < 1e-9);
        assert_eq!(both.delta_miss_samples, 120);
        let only_a = d.for_type("only-a").unwrap();
        assert!(only_a.in_a && !only_a.in_b);
        assert!((only_a.delta_pct + 10.0).abs() < 1e-9);
        let only_b = d.for_type("only-b").unwrap();
        assert!(!only_b.in_a && only_b.in_b);
    }

    #[test]
    fn realized_gain_needs_throughput_on_both_sides() {
        let a = summary(&[ty("hot", 50.0, 500)]);
        let b = summary(&[ty("hot", 50.0, 500)]);
        assert_eq!(diff(&a, &b, Some("hot")).realized_gain, None);
        assert_eq!(
            diff(&a.clone().with_rps(1000.0), &b.clone(), Some("hot")).realized_gain,
            None
        );
        // B serves each request in half the time: the fix removed 50 % of it.
        let d = diff(&a.with_rps(1000.0), &b.with_rps(2000.0), Some("hot"));
        let gain = d.realized_gain.unwrap();
        assert!((gain - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_fallback_verdicts_when_miss_counts_are_silent() {
        // The focus type has almost no misses on either side (below the sample floor)
        // but wastes kilobytes per fetch; the fix collapses the waste.
        let mut focus_a = ty_util("sparse", 12.5, 100_000);
        focus_a.miss_samples = 3;
        let mut focus_b = ty_util("sparse", 95.0, 2_000);
        focus_b.miss_samples = 3;
        let noise = ty("noise", 90.0, 900); // keeps counts_available true
        let a = summary(&[focus_a.clone(), noise.clone()]);
        let b = summary(&[focus_b.clone(), noise.clone()]);
        let d = diff(&a, &b, Some("sparse"));
        assert_eq!(d.verdict, Verdict::Eliminated);
        let row = d.for_type("sparse").unwrap();
        assert_eq!(row.delta_wasted_bytes, -98_000);
        assert!((row.utilization_pct_b - row.utilization_pct_a - 82.5).abs() < 1e-9);

        // Unchanged waste stays unchanged; growth worsens.
        assert_eq!(diff(&a, &a, Some("sparse")).verdict, Verdict::Unchanged);
        let mut worse = focus_a.clone();
        worse.wasted_bytes = 200_000;
        assert_eq!(
            diff(&a, &summary(&[worse, noise.clone()]), Some("sparse")).verdict,
            Verdict::Worsened
        );

        // Tiny waste is noise: no bottleneck to begin with.
        let mut tiny_a = ty_util("sparse", 50.0, 100);
        tiny_a.miss_samples = 3;
        let tiny = summary(&[tiny_a, noise.clone()]);
        assert_eq!(diff(&tiny, &b, Some("sparse")).verdict, Verdict::Unchanged);

        // Waste collapsing onto a growing rival is a moved bottleneck.
        let rival_b = summary(&[focus_b, ty_util("rival", 10.0, 90_000), noise]);
        let d = diff(&a, &rival_b, Some("sparse"));
        assert_eq!(d.verdict, Verdict::Moved);
        assert_eq!(d.moved_to.as_deref(), Some("rival"));
    }

    #[test]
    fn working_set_rank_is_order_independent() {
        let a = summary(&[ty("small", 1.0, 10), ty("big", 50.0, 500)]);
        let reordered = summary(&[ty("big", 50.0, 500), ty("small", 1.0, 10)]);
        assert_eq!(a.working_set_rank("big"), Some(0));
        assert_eq!(a.working_set_rank("small"), Some(1));
        assert_eq!(a.working_set_rank("big"), reordered.working_set_rank("big"));
        assert_eq!(a.working_set_rank("missing"), None);
    }
}
