//! The DProf profiler driver: orchestrates the two collection phases (access samples via
//! IBS, object access histories via debug registers), resolves and aggregates the raw
//! data, and builds the four views.

use crate::ground_truth::{resolve_ground_truth, GroundTruthProfile};
use crate::history::{collect_histories, CollectionStats, HistoryConfig, ObjectAccessHistory};
use crate::path_trace::{build_path_traces, PathTrace};
use crate::sample::{resolve_samples, AccessSample};
use crate::views::{
    build_data_profile, build_utilization, build_working_set, classify_misses, DataFlowGraph,
    DataProfileRow, TypeMissClassification, UtilizationProfile, WorkingSetView,
};
use serde::{Deserialize, Serialize};
use sim_kernel::{KernelState, TypeId};
use sim_machine::{IbsConfig, Machine, SamplingPolicy};
use std::collections::HashMap;

/// Configuration of a DProf profiling run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DprofConfig {
    /// IBS sampling policy: `fixed:<interval>` samples every N memory operations on
    /// average (the evaluation sweeps the equivalent samples/s/core in Figure 6-2);
    /// `adaptive:<budget>` spends at most `budget` samples over the whole phase,
    /// steered by the exponential-decay controller (see `docs/sampling.md`).
    pub sampling: SamplingPolicy,
    /// Workload rounds to run during the access-sampling phase.
    pub sample_rounds: usize,
    /// Number of top miss-heavy types to collect object access histories for.
    pub history_types: usize,
    /// Object-access-history collection settings.
    pub history: HistoryConfig,
    /// Average access latency (cycles) above which a data-flow node is drawn "hot".
    pub hot_node_threshold: f64,
    /// Also tally *every* access of the sampling phase exactly (the accuracy
    /// harness's ground truth).  Off by default: it is the one collection mode real
    /// profiling hardware cannot offer, and it costs a hash update per access.
    pub collect_ground_truth: bool,
}

impl Default for DprofConfig {
    fn default() -> Self {
        DprofConfig {
            sampling: SamplingPolicy::Fixed { interval_ops: 200 },
            sample_rounds: 300,
            history_types: 4,
            history: HistoryConfig::default(),
            hot_node_threshold: 100.0,
            collect_ground_truth: false,
        }
    }
}

/// Everything a DProf profiling run produces.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DprofProfile {
    /// The resolved access samples.
    pub samples: Vec<AccessSample>,
    /// The data-profile view (types ranked by miss share).
    pub data_profile: Vec<DataProfileRow>,
    /// The working-set view.
    pub working_set: WorkingSetView,
    /// The miss-classification view.
    pub miss_classification: Vec<TypeMissClassification>,
    /// Path traces per profiled type.
    pub path_traces: HashMap<TypeId, Vec<PathTrace>>,
    /// Data-flow graphs per profiled type.
    pub data_flows: HashMap<TypeId, DataFlowGraph>,
    /// Raw object access histories per profiled type.
    pub histories: HashMap<TypeId, Vec<ObjectAccessHistory>>,
    /// History-collection statistics per profiled type (the material of Tables 6.7-6.10).
    pub history_stats: HashMap<TypeId, CollectionStats>,
    /// The cycle window of the sampling phase (used for the working-set estimate).
    pub sample_window: (u64, u64),
    /// Raw IBS samples spent during the sampling phase (before address resolution;
    /// what an adaptive budget is charged against).
    pub samples_spent: u64,
    /// The exact per-type profile of the sampling phase, when
    /// [`DprofConfig::collect_ground_truth`] was on.
    pub ground_truth: Option<GroundTruthProfile>,
    /// The sampled line-utilization view (always collected; residencies are followed
    /// when their fill coincided with an IBS sample).
    #[serde(default)]
    pub utilization: UtilizationProfile,
}

impl DprofProfile {
    /// The data-profile row for a type name, if present.
    pub fn profile_row(&self, name: &str) -> Option<&DataProfileRow> {
        self.data_profile.iter().find(|r| r.name == name)
    }

    /// The rank (0 = most misses) of a type name in the data profile.
    pub fn rank_of(&self, name: &str) -> Option<usize> {
        self.data_profile.iter().position(|r| r.name == name)
    }

    /// The data-flow graph for a type name, if histories were collected for it.
    pub fn data_flow(&self, name: &str) -> Option<&DataFlowGraph> {
        self.data_flows
            .iter()
            .find(|(ty, _)| {
                self.data_profile
                    .iter()
                    .any(|r| r.type_id == **ty && r.name == name)
            })
            .map(|(_, g)| g)
    }
}

/// The DProf profiler.
#[derive(Debug, Clone, Default)]
pub struct Dprof {
    config: DprofConfig,
}

impl Dprof {
    /// Creates a profiler with the given configuration.
    pub fn new(config: DprofConfig) -> Self {
        Dprof { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &DprofConfig {
        &self.config
    }

    /// Phase 1 only: collects and resolves access samples while running the workload.
    pub fn collect_access_samples<F>(
        &self,
        machine: &mut Machine,
        kernel: &mut KernelState,
        mut step: F,
    ) -> SamplePhase
    where
        F: FnMut(&mut Machine, &mut KernelState),
    {
        machine.configure_ibs(IbsConfig::with_policy(self.config.sampling));
        machine.ibs.drain();
        if self.config.collect_ground_truth {
            machine.start_ground_truth();
        }
        // The sampled utilization tally rides every phase: a residency is followed
        // whenever its fill coincided with an IBS sample, so the view costs nothing
        // extra in sample budget.
        machine.start_utilization();
        let start = machine.max_clock();
        for _ in 0..self.config.sample_rounds {
            step(machine, kernel);
        }
        let end = machine.max_clock();
        let samples_spent = machine.ibs.phase_samples();
        machine.configure_ibs(IbsConfig::default()); // disable
        let line_size = machine.hierarchy.line_size() as u64;
        let cps = machine.config().cycles_per_second;
        let ground_truth = machine.take_ground_truth().map(|tally| {
            let mut gt = resolve_ground_truth(&tally, &kernel.allocator, &kernel.types);
            gt.utilization = build_utilization(
                &tally.utilization,
                &kernel.allocator,
                &kernel.types,
                line_size,
                end - start,
                cps,
            );
            gt
        });
        let utilization = machine
            .take_utilization()
            .map(|tally| {
                build_utilization(
                    &tally,
                    &kernel.allocator,
                    &kernel.types,
                    line_size,
                    end - start,
                    cps,
                )
            })
            .unwrap_or_default();
        let records = machine.ibs.drain();
        SamplePhase {
            samples: resolve_samples(&records, &kernel.allocator),
            window: (start, end),
            samples_spent,
            ground_truth,
            utilization,
        }
    }

    /// Runs a complete DProf profiling session: access samples, then object access
    /// histories for the top miss-heavy types, then view construction.
    pub fn run<F>(
        &self,
        machine: &mut Machine,
        kernel: &mut KernelState,
        mut step: F,
    ) -> DprofProfile
    where
        F: FnMut(&mut Machine, &mut KernelState),
    {
        // Phase 1: access samples (plus the exact tally when ground truth is on).
        let SamplePhase {
            samples,
            window: sample_window,
            samples_spent,
            ground_truth,
            utilization,
        } = self.collect_access_samples(machine, kernel, &mut step);

        // Pick the types with the most L1-miss samples for history collection.
        let mut miss_counts: HashMap<TypeId, u64> = HashMap::new();
        for s in &samples {
            if s.is_l1_miss() {
                *miss_counts.entry(s.type_id).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(TypeId, u64)> = miss_counts.into_iter().collect();
        // Ties must break on the stable type id, not on HashMap iteration order: the
        // selected set determines the entire history-collection phase, and trace replay
        // requires a recorded run and its replay (different processes, different
        // SipHash keys) to pick identical types.
        ranked.sort_by_key(|&(t, n)| (std::cmp::Reverse(n), t));
        let top_types: Vec<TypeId> = ranked
            .iter()
            .take(self.config.history_types)
            .map(|(t, _)| *t)
            .collect();

        // Phase 2: object access histories for the top types.
        let mut histories: HashMap<TypeId, Vec<ObjectAccessHistory>> = HashMap::new();
        let mut history_stats: HashMap<TypeId, CollectionStats> = HashMap::new();
        for &ty in &top_types {
            let mut cfg: HistoryConfig = self.config.history.clone();
            if cfg.offsets_of_interest.is_none() {
                // Focus on the most-accessed offsets of the type, as the thesis does to
                // keep collection tractable; fall back to the whole type if samples are
                // too sparse.
                let offsets = popular_offsets(&samples, ty, 8);
                if !offsets.is_empty() {
                    cfg.offsets_of_interest = Some(offsets);
                }
            }
            let (h, stats) = collect_histories(machine, kernel, ty, &cfg, &mut step);
            histories.insert(ty, h);
            history_stats.insert(ty, stats);
        }

        // View construction.
        let working_set = build_working_set(
            kernel.allocator.address_set(),
            &kernel.types,
            machine.config().hierarchy.l2,
            sample_window.0,
            sample_window.1,
        );
        let mut path_traces: HashMap<TypeId, Vec<PathTrace>> = HashMap::new();
        let mut data_flows: HashMap<TypeId, DataFlowGraph> = HashMap::new();
        for (&ty, hs) in &histories {
            let traces = build_path_traces(ty, hs, &samples);
            data_flows.insert(ty, DataFlowGraph::build(ty, &traces, &machine.symbols));
            path_traces.insert(ty, traces);
        }
        let data_profile = build_data_profile(&samples, &path_traces, &working_set, &kernel.types);
        let miss_classification =
            classify_misses(&samples, &path_traces, &working_set, &kernel.types);

        DprofProfile {
            samples,
            data_profile,
            working_set,
            miss_classification,
            path_traces,
            data_flows,
            histories,
            history_stats,
            sample_window,
            samples_spent,
            ground_truth,
            utilization,
        }
    }
}

/// Everything phase 1 (access sampling) produces.
#[derive(Debug, Clone)]
pub struct SamplePhase {
    /// The resolved access samples.
    pub samples: Vec<AccessSample>,
    /// The cycle window of the phase.
    pub window: (u64, u64),
    /// Raw IBS samples spent (pre-resolution; the adaptive budget accountant).
    pub samples_spent: u64,
    /// The exact per-type profile, when ground truth was collected.
    pub ground_truth: Option<GroundTruthProfile>,
    /// The sampled line-utilization view of the phase.
    pub utilization: UtilizationProfile,
}

/// The most frequently sampled 8-byte-aligned offsets of a type, largest first.
pub fn popular_offsets(samples: &[AccessSample], type_id: TypeId, limit: usize) -> Vec<u64> {
    let mut counts: HashMap<u64, u64> = HashMap::new();
    for s in samples.iter().filter(|s| s.type_id == type_id) {
        *counts.entry(s.offset & !7).or_insert(0) += 1;
    }
    let mut v: Vec<(u64, u64)> = counts.into_iter().collect();
    v.sort_by_key(|(off, n)| (std::cmp::Reverse(*n), *off));
    v.into_iter().take(limit).map(|(off, _)| off).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cache::HitLevel;
    use sim_machine::FunctionId;

    #[test]
    fn popular_offsets_ranked_by_frequency() {
        let mk = |offset| AccessSample {
            type_id: TypeId(1),
            offset,
            ip: FunctionId(0),
            cpu: 0,
            level: HitLevel::L1,
            latency: 3,
            is_write: false,
        };
        let samples = vec![mk(0), mk(64), mk(64), mk(64), mk(128), mk(128)];
        let offs = popular_offsets(&samples, TypeId(1), 2);
        assert_eq!(offs, vec![64, 128]);
        assert!(popular_offsets(&samples, TypeId(2), 4).is_empty());
    }

    #[test]
    fn default_config_is_sane() {
        let c = DprofConfig::default();
        assert!(c.sampling.enabled());
        assert!(c.history_types > 0);
        assert!(c.sample_rounds > 0);
        assert!(!c.collect_ground_truth);
    }
}
