//! # dprof
//!
//! Facade crate for the DProf reproduction (EuroSys 2010, *"Locating cache performance
//! bottlenecks using data profiling"*).  It re-exports the workspace crates so examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`core`] ([`dprof_core`]) — the profiler itself: access samples, object access
//!   histories, path traces and the four data-centric views.
//! * [`machine`] ([`sim_machine`]) — the simulated multicore machine with IBS-style
//!   sampling and debug-register watchpoints.
//! * [`cache`] ([`sim_cache`]) — the set-associative, MESI-coherent cache hierarchy.
//! * [`kernel`] ([`sim_kernel`]) — the Linux-like kernel substrate (typed SLAB
//!   allocator, network stack, locks).
//! * [`workloads`] — the memcached and Apache workloads from the evaluation, plus the
//!   planted-bottleneck scenario corpus (`workloads::scenarios`).
//! * [`trace`] ([`dprof_trace`]) — the `.dtrace` record/replay subsystem: binary
//!   access-trace format, full-pipeline deterministic replay, bench trace lowering.
//! * [`baselines`] — OProfile-style and lock-stat baselines.
//!
//! See `examples/quickstart.rs` for a five-minute tour and the `dprof-bench` crate for
//! the full table/figure reproduction harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use baselines;
pub use dprof_core as core;
pub use dprof_trace as trace;
pub use sim_cache as cache;
pub use sim_kernel as kernel;
pub use sim_machine as machine;
pub use workloads;

/// A convenient prelude pulling in the types most programs need.
pub mod prelude {
    pub use baselines::{LockstatReport, OprofileReport};
    pub use dprof_core::{Dprof, DprofConfig, DprofProfile, HistoryConfig};
    pub use sim_kernel::{KernelConfig, KernelState, TxQueuePolicy};
    pub use sim_machine::{Machine, MachineConfig};
    pub use workloads::{
        measure_throughput, Apache, ApacheConfig, Memcached, MemcachedConfig, Workload,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_types_are_reachable() {
        // Compile-time check that the re-exports line up.
        use crate::prelude::*;
        let cfg = MachineConfig::small_test();
        let m = Machine::new(cfg);
        assert_eq!(m.cores(), 2);
        let _ = DprofConfig::default();
        let _ = MemcachedConfig::default();
        let _ = ApacheConfig::peak();
    }
}
